//! Fair multiplexing of many card sessions over a pool of worker threads.
//!
//! A smart-card pull session is a long conversation: hundreds of APDU
//! exchanges and chunk requests per document. Serving K clients one after the
//! other would give the first card exclusive use of the DSP and make the last
//! card wait K full sessions. The [`SessionScheduler`] advances every session
//! a *quantum* of chunk requests at a time instead, using one of two
//! execution engines ([`SchedulerEngine`]):
//!
//! * **[`SchedulerEngine::Threads`]** (the default) — workers pop the session
//!   at the head of a shared FIFO run queue, step it once, and — if it is not
//!   done — requeue it at the tail. The FIFO requeue is what makes the
//!   schedule a fair round-robin per card: between two steps of one session,
//!   every other runnable session gets exactly one step. Every live session
//!   rides the queue every lap, so a lap costs O(sessions) even when most
//!   sessions are waiting — fine at hundreds of sessions, the bottleneck at
//!   tens of thousands.
//! * **[`SchedulerEngine::Actors`]** — the same sessions run on the
//!   [`crate::actors::ActorEngine`]: per-session bounded mailboxes, a
//!   work-stealing worker pool, and readiness-driven parking, preserving the
//!   per-worker FIFO fairness while doing O(changed work) per step. The E11
//!   experiment (`benches/e11_actor_scale.rs`) measures the crossover.
//!
//! Both engines produce the same [`ScheduleReport`] and, for deterministic
//! workloads, byte-identical per-session results (`tests/actor_equivalence.
//! rs` pins this property).
//!
//! The scheduler is deliberately generic: anything implementing
//! [`Schedulable`] can be multiplexed. The terminal proxy implements it for
//! its `CardSession` (a card mid-pull against the shared [`crate::service::
//! DspService`]), which is what the E10 multi-client experiment drives.

use std::collections::VecDeque;

use sdds_sync::sync::atomic::{AtomicUsize, Ordering};
use sdds_sync::sync::{Condvar, Mutex, MutexExt};
use sdds_sync::thread;

use crate::actors::{ActorEngine, ActorSession, ActorStatus};
use crate::obs::{ActorObs, DspObs, SchedulerObs};

/// What a step of a session reports back to the scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// The session made progress but has more work; requeue it.
    Pending,
    /// The session finished (its output can be collected from the session).
    Complete,
}

/// A session the scheduler can advance in bounded steps.
pub trait Schedulable: Send {
    /// Advances the session by at most `quantum` units of work (for a card
    /// pull session: chunk requests served). Returns [`StepOutcome::Pending`]
    /// while more work remains; an `Err` retires the session immediately with
    /// the given message.
    fn step(&mut self, quantum: usize) -> Result<StepOutcome, String>;
}

/// One retired session, with its scheduling telemetry.
#[derive(Debug)]
pub struct FinishedSession<S> {
    /// Position of the session in the submitted batch.
    pub index: usize,
    /// The session itself (views, meters and ledgers are read off it).
    pub session: S,
    /// Steps the scheduler granted it.
    pub steps: usize,
    /// Retirement rank: 0 for the first session to finish, and so on.
    pub completion_order: usize,
    /// Error message if the session failed rather than completed.
    pub error: Option<String>,
}

impl<S> FinishedSession<S> {
    /// True when the session retired without an error.
    pub fn is_ok(&self) -> bool {
        self.error.is_none()
    }
}

/// Outcome of one scheduler run.
#[derive(Debug)]
pub struct ScheduleReport<S> {
    /// Every submitted session, in retirement order.
    pub finished: Vec<FinishedSession<S>>,
    /// Total steps granted across sessions.
    pub steps_total: usize,
}

impl<S> ScheduleReport<S> {
    /// Sessions that failed, as `(index, message)` pairs.
    pub fn failures(&self) -> Vec<(usize, &str)> {
        self.finished
            .iter()
            .filter_map(|f| f.error.as_deref().map(|e| (f.index, e)))
            .collect()
    }

    /// Largest difference in granted steps between any two sessions — the
    /// fairness figure the round-robin tests pin.
    pub fn step_spread(&self) -> usize {
        let steps = self.finished.iter().map(|f| f.steps);
        match (steps.clone().max(), steps.min()) {
            (Some(max), Some(min)) => max - min,
            _ => 0,
        }
    }
}

/// Which execution engine a [`SessionScheduler`] runs its sessions on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulerEngine {
    /// Shared blocking FIFO, one step per pop, requeue at the tail
    /// (round-robin; O(sessions) per lap). The default.
    #[default]
    Threads,
    /// Per-session mailboxes on the work-stealing
    /// [`crate::actors::ActorEngine`] (readiness-driven; O(changed work)).
    Actors,
}

/// A work-conserving round-robin scheduler over a fixed worker pool.
#[derive(Debug, Clone)]
pub struct SessionScheduler {
    workers: usize,
    quantum: usize,
    engine: SchedulerEngine,
    /// Thread-engine telemetry (queue depth, steps, step latency); detached
    /// until [`SessionScheduler::with_obs`] wires it.
    obs: SchedulerObs,
    /// Actor-engine telemetry, forwarded to the [`ActorEngine`] when the
    /// actor engine is selected.
    actor_obs: ActorObs,
}

/// Adapter running a [`Schedulable`] on the actor engine: each dispatch
/// grants one quantum-bounded step, and the session stays `Ready` (self-
/// driving) until it completes — the actor-engine equivalent of the FIFO
/// requeue.
struct StepActor<S> {
    session: S,
    quantum: usize,
    steps: usize,
}

impl<S: Schedulable> ActorSession for StepActor<S> {
    type Event = ();

    fn on_event(&mut self, (): ()) -> Result<ActorStatus, String> {
        self.on_step()
    }

    fn on_step(&mut self) -> Result<ActorStatus, String> {
        self.steps += 1;
        match self.session.step(self.quantum)? {
            StepOutcome::Pending => Ok(ActorStatus::Ready),
            StepOutcome::Complete => Ok(ActorStatus::Complete),
        }
    }
}

/// A session riding the run queue.
struct Job<S> {
    index: usize,
    session: S,
    steps: usize,
}

impl SessionScheduler {
    /// Creates a scheduler with `workers` worker threads, each advancing a
    /// session by `quantum` units per step. Both are clamped to at least 1.
    pub fn new(workers: usize, quantum: usize) -> Self {
        SessionScheduler {
            workers: workers.max(1),
            quantum: quantum.max(1),
            engine: SchedulerEngine::default(),
            obs: SchedulerObs::detached(),
            actor_obs: ActorObs::detached(),
        }
    }

    /// Wires the scheduler's telemetry (run-queue depth, step counters and
    /// latency, and — on the actor engine — the park/steal protocol) into
    /// `obs`'s cells so a service-wide snapshot covers the scheduling layer.
    pub fn with_obs(mut self, obs: &DspObs) -> Self {
        self.obs = obs.scheduler();
        self.actor_obs = obs.actors();
        self
    }

    /// Selects the execution engine (defaults to
    /// [`SchedulerEngine::Threads`]).
    ///
    /// ```
    /// use sdds_dsp::service::{SchedulerEngine, SessionScheduler};
    ///
    /// let scheduler = SessionScheduler::new(4, 8).engine(SchedulerEngine::Actors);
    /// assert_eq!(scheduler.engine_kind(), SchedulerEngine::Actors);
    /// ```
    pub fn engine(mut self, engine: SchedulerEngine) -> Self {
        self.engine = engine;
        self
    }

    /// The selected execution engine.
    pub fn engine_kind(&self) -> SchedulerEngine {
        self.engine
    }

    /// Worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Units of work per scheduling step.
    pub fn quantum(&self) -> usize {
        self.quantum
    }

    /// Runs every session to retirement and returns them with their
    /// scheduling telemetry, on the engine selected by
    /// [`SessionScheduler::engine`]. On the thread engine, sessions are
    /// started in submission order and requeued FIFO, so with a single worker
    /// the schedule is an exact round-robin; with more workers it is
    /// round-robin up to the worker-count reordering window. The actor engine
    /// preserves the same local-FIFO fairness per worker.
    pub fn run<S: Schedulable>(&self, sessions: Vec<S>) -> ScheduleReport<S> {
        match self.engine {
            SchedulerEngine::Threads => self.run_threads(sessions),
            SchedulerEngine::Actors => self.run_actors(sessions),
        }
    }

    /// The actor path: wrap each session in a self-driving [`StepActor`]
    /// (one quantum-bounded step per dispatch), seed them all ready, and
    /// translate the [`crate::actors::ActorReport`] back into a
    /// [`ScheduleReport`] sorted by retirement rank.
    fn run_actors<S: Schedulable>(&self, sessions: Vec<S>) -> ScheduleReport<S> {
        let actors: Vec<StepActor<S>> = sessions
            .into_iter()
            .map(|session| StepActor {
                session,
                quantum: self.quantum,
                steps: 0,
            })
            .collect();
        let report = ActorEngine::new(self.workers)
            .with_obs(self.actor_obs.clone())
            .run_ready(actors);
        let steps_total = report.dispatches_total;
        let mut finished: Vec<FinishedSession<S>> = report
            .actors
            .into_iter()
            .map(|actor| FinishedSession {
                index: actor.index,
                session: actor.actor.session,
                steps: actor.actor.steps,
                completion_order: actor.completion_order.unwrap_or(usize::MAX),
                error: actor.error,
            })
            .collect();
        finished.sort_by_key(|f| f.completion_order);
        for (rank, f) in finished.iter_mut().enumerate() {
            f.completion_order = rank;
        }
        ScheduleReport {
            finished,
            steps_total,
        }
    }

    /// The thread path: a shared blocking FIFO run queue.
    fn run_threads<S: Schedulable>(&self, sessions: Vec<S>) -> ScheduleReport<S> {
        let queue: Mutex<VecDeque<Job<S>>> = Mutex::new(
            sessions
                .into_iter()
                .enumerate()
                .map(|(index, session)| Job {
                    index,
                    session,
                    steps: 0,
                })
                .collect(),
        );
        if self.obs.live {
            self.obs.queue_depth.set(queue.lock_np().len() as u64);
        }
        let runnable = Condvar::new();
        let in_flight = AtomicUsize::new(0);
        let finished: Mutex<Vec<FinishedSession<S>>> = Mutex::new(Vec::new());
        let steps_total = AtomicUsize::new(0);

        thread::scope(|scope| {
            for worker in 0..self.workers {
                let queue = &queue;
                let runnable = &runnable;
                let in_flight = &in_flight;
                let finished = &finished;
                let steps_total = &steps_total;
                let obs = &self.obs;
                scope.spawn(move || loop {
                    let job = {
                        let mut q = queue.lock_np();
                        loop {
                            if let Some(job) = q.pop_front() {
                                // ordering: in_flight must be visibly raised
                                // before the queue lock drops — the exit check
                                // below reads it under the same lock.
                                in_flight.fetch_add(1, Ordering::SeqCst);
                                if obs.live {
                                    obs.queue_depth.set(q.len() as u64);
                                }
                                break Some(job);
                            }
                            // A stepping worker requeues *before* decrementing
                            // in_flight, so while the queue lock is held,
                            // "empty queue and nothing in flight" really means
                            // the run is over — checked under the lock so a
                            // concurrent requeue cannot slip between the two
                            // reads and retire this worker while work remains.
                            // ordering: pairs with the fetch_add/fetch_sub
                            // around a step; both run under/against the queue
                            // lock, so SeqCst keeps the exit check exact.
                            if in_flight.load(Ordering::SeqCst) == 0 {
                                break None;
                            }
                            // Otherwise sleep until a requeue or a retirement
                            // signals (no busy spin while a straggler runs).
                            q = runnable
                                .wait(q)
                                .unwrap_or_else(|poisoned| poisoned.into_inner());
                        }
                    };
                    let Some(mut job) = job else {
                        // Wake any other idle worker so it can re-check the
                        // termination condition and exit too.
                        runnable.notify_all();
                        break;
                    };
                    job.steps += 1;
                    steps_total.fetch_add(1, Ordering::Relaxed);
                    let started = if obs.live {
                        obs.recorder.now_nanos()
                    } else {
                        0
                    };
                    let outcome = job.session.step(self.quantum);
                    if obs.live {
                        let duration = obs.recorder.now_nanos().saturating_sub(started);
                        obs.steps.inc();
                        obs.step_latency.record(duration);
                        obs.recorder.record(worker, "sched.step", started, duration);
                    }
                    match outcome {
                        Ok(StepOutcome::Pending) => {
                            let mut q = queue.lock_np();
                            q.push_back(job);
                            if obs.live {
                                obs.queue_depth.set(q.len() as u64);
                            }
                        }
                        Ok(StepOutcome::Complete) | Err(_) => {
                            let mut done = finished.lock_np();
                            let completion_order = done.len();
                            done.push(FinishedSession {
                                index: job.index,
                                session: job.session,
                                steps: job.steps,
                                completion_order,
                                error: outcome.err(),
                            });
                        }
                    }
                    // ordering: requeue/retire above happens-before this
                    // decrement; a worker that sees 0 under the queue lock
                    // must also see the requeued job (or its retirement).
                    in_flight.fetch_sub(1, Ordering::SeqCst);
                    // Either a session was requeued (runnable work) or one
                    // retired (the termination condition may now hold): both
                    // are events the sleepers must see.
                    runnable.notify_all();
                });
            }
        });

        ScheduleReport {
            finished: finished
                .into_inner()
                .unwrap_or_else(|poisoned| poisoned.into_inner()),
            steps_total: steps_total.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A session needing `remaining` units of work.
    struct Counter {
        remaining: usize,
        fail_at: Option<usize>,
    }

    impl Schedulable for Counter {
        fn step(&mut self, quantum: usize) -> Result<StepOutcome, String> {
            if let Some(at) = self.fail_at {
                if self.remaining <= at {
                    return Err("boom".into());
                }
            }
            self.remaining = self.remaining.saturating_sub(quantum);
            if self.remaining == 0 {
                Ok(StepOutcome::Complete)
            } else {
                Ok(StepOutcome::Pending)
            }
        }
    }

    #[test]
    fn single_worker_round_robin_is_exactly_fair() {
        let scheduler = SessionScheduler::new(1, 10);
        let sessions = (0..8)
            .map(|_| Counter {
                remaining: 100,
                fail_at: None,
            })
            .collect();
        let report = scheduler.run(sessions);
        assert_eq!(report.finished.len(), 8);
        assert!(report.finished.iter().all(FinishedSession::is_ok));
        // Equal work + FIFO requeue ⇒ every session got exactly 10 steps.
        assert_eq!(report.step_spread(), 0);
        assert_eq!(report.steps_total, 80);
        // Round-robin retires equal sessions in submission order.
        let order: Vec<usize> = report.finished.iter().map(|f| f.index).collect();
        assert_eq!(order, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn short_sessions_finish_before_long_ones_complete() {
        let scheduler = SessionScheduler::new(2, 5);
        let mut sessions = Vec::new();
        for i in 0..6 {
            sessions.push(Counter {
                remaining: if i % 2 == 0 { 10 } else { 200 },
                fail_at: None,
            });
        }
        let report = scheduler.run(sessions);
        assert_eq!(report.finished.len(), 6);
        // The three short sessions all retire before any long one: fairness
        // means a long session cannot starve the short ones behind it.
        let short_max = report
            .finished
            .iter()
            .filter(|f| f.index % 2 == 0)
            .map(|f| f.completion_order)
            .max()
            .unwrap();
        let long_min = report
            .finished
            .iter()
            .filter(|f| f.index % 2 == 1)
            .map(|f| f.completion_order)
            .min()
            .unwrap();
        assert!(short_max < long_min);
    }

    #[test]
    fn failing_sessions_retire_with_their_error_without_stalling_others() {
        let scheduler = SessionScheduler::new(3, 7);
        let sessions = vec![
            Counter {
                remaining: 50,
                fail_at: None,
            },
            Counter {
                remaining: 50,
                fail_at: Some(30),
            },
            Counter {
                remaining: 50,
                fail_at: None,
            },
        ];
        let report = scheduler.run(sessions);
        assert_eq!(report.finished.len(), 3);
        let failures = report.failures();
        assert_eq!(failures.len(), 1);
        assert_eq!(failures[0].0, 1);
        assert_eq!(failures[0].1, "boom");
        assert!(report.finished.iter().filter(|f| f.is_ok()).count() == 2);
    }

    #[test]
    fn actor_engine_matches_the_thread_engine_on_equal_work() {
        let sessions = || {
            (0..12)
                .map(|i| Counter {
                    remaining: 40 + 10 * (i % 3),
                    fail_at: if i == 5 { Some(20) } else { None },
                })
                .collect::<Vec<_>>()
        };
        let threads = SessionScheduler::new(2, 10).run(sessions());
        let actors = SessionScheduler::new(2, 10)
            .engine(SchedulerEngine::Actors)
            .run(sessions());
        assert_eq!(actors.finished.len(), threads.finished.len());
        assert_eq!(actors.steps_total, threads.steps_total);
        assert_eq!(actors.failures(), threads.failures());
        // Same per-session step counts, compared in index order.
        let per_index = |report: &ScheduleReport<Counter>| {
            let mut steps: Vec<(usize, usize)> =
                report.finished.iter().map(|f| (f.index, f.steps)).collect();
            steps.sort_unstable();
            steps
        };
        assert_eq!(per_index(&actors), per_index(&threads));
        // Retirement ranks are dense on both engines.
        let mut ranks: Vec<usize> = actors.finished.iter().map(|f| f.completion_order).collect();
        ranks.sort_unstable();
        assert_eq!(ranks, (0..12).collect::<Vec<_>>());
    }

    #[test]
    fn clamps_degenerate_configuration() {
        let scheduler = SessionScheduler::new(0, 0);
        assert_eq!(scheduler.workers(), 1);
        assert_eq!(scheduler.quantum(), 1);
        let report = scheduler.run(vec![Counter {
            remaining: 3,
            fail_at: None,
        }]);
        assert_eq!(report.finished.len(), 1);
        assert_eq!(report.finished[0].steps, 3);
        assert_eq!(report.step_spread(), 0);
    }
}
