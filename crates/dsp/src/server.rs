//! Pull-mode request API of the DSP.
//!
//! The terminal proxy fetches the document header, then individual encrypted
//! chunks (with their Merkle proofs) *on demand of the card*, and the protected
//! rule blob of its subject. The server counts every byte it serves — the
//! transfer-volume results of experiments E2 and E5 are read off these
//! counters on one side and off the card ledger on the other.

use sdds_core::secdoc::DocumentHeader;
use sdds_core::CoreError;
use sdds_crypto::merkle::MerkleProof;

use crate::store::DspStore;

/// Serving statistics of a DSP.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Requests served.
    pub requests: usize,
    /// Payload bytes served (headers, chunks, proofs, rule blobs).
    pub bytes_served: usize,
    /// Chunk requests served.
    pub chunks_served: usize,
}

/// The DSP front-end.
#[derive(Debug, Default)]
pub struct DspServer {
    store: DspStore,
    stats: ServerStats,
}

impl DspServer {
    /// Creates a server over an empty store.
    pub fn new() -> Self {
        DspServer::default()
    }

    /// Access to the underlying store (uploads).
    pub fn store_mut(&mut self) -> &mut DspStore {
        &mut self.store
    }

    /// Read access to the store.
    pub fn store(&self) -> &DspStore {
        &self.store
    }

    /// Serving statistics.
    pub fn stats(&self) -> ServerStats {
        self.stats
    }

    /// Resets the serving statistics (between experiment runs).
    pub fn reset_stats(&mut self) {
        self.stats = ServerStats::default();
    }

    fn record(&mut self, bytes: usize) {
        self.stats.requests += 1;
        self.stats.bytes_served += bytes;
    }

    fn missing(doc_id: &str) -> CoreError {
        CoreError::BadState {
            message: format!("document `{doc_id}` is not stored at this DSP"),
        }
    }

    /// Fetches a document header.
    pub fn fetch_header(&mut self, doc_id: &str) -> Result<DocumentHeader, CoreError> {
        let record = self
            .store
            .get(doc_id)
            .ok_or_else(|| Self::missing(doc_id))?;
        let header = record.document.header.clone();
        self.record(header.encode().len());
        Ok(header)
    }

    /// Fetches one encrypted chunk and its Merkle proof.
    pub fn fetch_chunk(
        &mut self,
        doc_id: &str,
        index: u32,
    ) -> Result<(Vec<u8>, MerkleProof), CoreError> {
        let record = self
            .store
            .get(doc_id)
            .ok_or_else(|| Self::missing(doc_id))?;
        let chunk = record
            .document
            .chunk(index as usize)
            .ok_or_else(|| CoreError::BadState {
                message: format!("chunk {index} out of range for `{doc_id}`"),
            })?
            .to_vec();
        let proof = record.document.proof(index as usize)?;
        let bytes = chunk.len() + proof.encode().len();
        self.record(bytes);
        self.stats.chunks_served += 1;
        Ok((chunk, proof))
    }

    /// Fetches the protected rule blob of `subject`.
    pub fn fetch_rules(&mut self, doc_id: &str, subject: &str) -> Result<Vec<u8>, CoreError> {
        let record = self
            .store
            .get(doc_id)
            .ok_or_else(|| Self::missing(doc_id))?;
        let blob = record
            .rules
            .get(subject)
            .ok_or_else(|| CoreError::BadState {
                message: format!("no rules stored for subject `{subject}` on `{doc_id}`"),
            })?
            .clone();
        self.record(blob.len());
        Ok(blob)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdds_core::rule::RuleSet;
    use sdds_core::secdoc::SecureDocumentBuilder;
    use sdds_core::session::ProtectedRules;
    use sdds_crypto::SecretKey;
    use sdds_xml::generator::{self, GeneratorConfig, HospitalProfile};

    fn server() -> DspServer {
        let mut server = DspServer::new();
        let doc = generator::hospital(
            &HospitalProfile {
                patients: 3,
                ..HospitalProfile::default()
            },
            &GeneratorConfig::default(),
        );
        let secure =
            SecureDocumentBuilder::new("folder", SecretKey::derive(b"s", "doc")).build(&doc);
        server.store_mut().put_document(secure);
        let rules = RuleSet::parse("+, doctor, //patient").unwrap();
        let sealed = ProtectedRules::seal(&rules, &SecretKey::derive(b"s", "rules"));
        server
            .store_mut()
            .put_rules("folder", "doctor", &sealed)
            .unwrap();
        server
    }

    #[test]
    fn serves_headers_chunks_and_rules_with_accounting() {
        let mut s = server();
        let header = s.fetch_header("folder").unwrap();
        assert_eq!(header.doc_id, "folder");
        let (chunk, proof) = s.fetch_chunk("folder", 0).unwrap();
        proof.verify(&chunk, &header.merkle_root).unwrap();
        let rules = s.fetch_rules("folder", "doctor").unwrap();
        assert!(!rules.is_empty());
        let stats = s.stats();
        assert_eq!(stats.requests, 3);
        assert_eq!(stats.chunks_served, 1);
        assert!(stats.bytes_served > chunk.len());
        s.reset_stats();
        assert_eq!(s.stats().requests, 0);
    }

    #[test]
    fn unknown_objects_are_reported() {
        let mut s = server();
        assert!(s.fetch_header("nope").is_err());
        assert!(s.fetch_chunk("folder", 9999).is_err());
        assert!(s.fetch_rules("folder", "stranger").is_err());
        assert!(s.store().get("folder").is_some());
    }
}
