//! Simulated public-key infrastructure.
//!
//! The demo deliberately does not deploy a real PKI: "In the demonstration, we
//! will not use a PKI infrastructure but rather simulate it to keep the
//! demonstration independent of a network connection. Moreover, PKI is a
//! well-known technique that need not be demonstrated." (footnote 2).
//!
//! The simulation keeps the *interface* of a PKI — every subject ends up
//! sharing a pairwise transport secret with the community's trusted server,
//! which is what the key-provisioning protocol of `sdds-core::session`
//! consumes — while deriving those secrets deterministically from a community
//! secret, exactly like [`sdds_core::session::TrustedServer`] does.

use sdds_core::rule::Subject;
use sdds_crypto::SecretKey;

/// The simulated PKI of one community.
// taint: redacted — holds only a SecretKey, whose Debug prints a
// placeholder instead of the bytes.
#[derive(Debug, Clone)]
pub struct SimulatedPki {
    community_master: SecretKey,
}

impl SimulatedPki {
    /// Creates the PKI of a community identified by `community_secret` (the
    /// same secret the community's [`sdds_core::session::TrustedServer`] was
    /// created from).
    pub fn new(community_secret: &[u8]) -> Self {
        SimulatedPki {
            community_master: SecretKey::derive(community_secret, "community-master"),
        }
    }

    /// The transport key a card issued to `subject` is personalised with.
    /// Matches [`sdds_core::session::TrustedServer::transport_key_for`], which
    /// is precisely what a key-agreement protocol would guarantee.
    pub fn card_transport_key(&self, subject: &Subject) -> SecretKey {
        self.community_master
            .subkey(&format!("transport:{}", subject.name()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdds_core::rule::RuleSet;
    use sdds_core::session::TrustedServer;

    #[test]
    fn pki_and_trusted_server_agree_on_transport_keys() {
        let secret = b"family-2005";
        let pki = SimulatedPki::new(secret);
        let server = TrustedServer::new(secret, RuleSet::new());
        for name in ["alice", "bob", "carole"] {
            let subject = Subject::new(name);
            assert_eq!(
                pki.card_transport_key(&subject),
                server.transport_key_for(&subject),
                "transport keys must agree for {name}"
            );
        }
        // Different subjects get different keys.
        assert_ne!(
            pki.card_transport_key(&Subject::new("alice")),
            pki.card_transport_key(&Subject::new("bob"))
        );
        // Different communities get different keys.
        let other = SimulatedPki::new(b"another-community");
        assert_ne!(
            pki.card_transport_key(&Subject::new("alice")),
            other.card_transport_key(&Subject::new("alice"))
        );
    }
}
