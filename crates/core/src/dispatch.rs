//! The shared dispatch automaton: all rule automata merged into one
//! prefix-sharing transition structure over interned name symbols.
//!
//! The baseline engine of [`crate::runtime`] kept one non-deterministic
//! automaton per rule and, for every `open` event, iterated every rule's
//! candidate states and compared element names as strings. That is faithful to
//! the paper but scales linearly with the number of installed rules — the E1
//! experiment showed a collapse from ~6.3M events/s at 1 rule to ~0.5M at 64.
//!
//! [`DispatchTable`] removes that cliff by sharing work across rules:
//!
//! * every tag and attribute name mentioned by a rule is interned to a dense
//!   [`Symbol`] (see [`sdds_xml::symbols`]); document tokens are *looked up*
//!   (never interned), so a token that no rule mentions can only trigger
//!   wildcard transitions and costs one hash probe,
//! * the navigational automata of all rules (and the query) are merged into a
//!   single prefix-sharing trie: rules with equal step prefixes (same axis,
//!   node test and predicates) share [`DispatchNode`]s and [`DispatchEdge`]s,
//!   and identical rule objects collapse to one path whose final edge simply
//!   *accepts* several targets,
//! * transitions are keyed by `(state, symbol)`: the engine keeps, per symbol,
//!   a bucket of the active states waiting on that symbol, so an `open` event
//!   touches only the states that can actually advance on it,
//! * deferred predicate paths are compiled once into an arena of
//!   [`PredProgram`]s; pending instances reference a program by [`PredId`]
//!   instead of cloning the predicate steps per instance.
//!
//! The symbol table and the predicate arena are **append-only** across rule
//! additions and removals: a rebuild after a policy change only reconstructs
//! the (small) trie and re-registers the currently active states, which keeps
//! dynamic rule updates (experiment E7) cheap.

use std::collections::HashMap;

use sdds_xml::{Symbol, SymbolTable};
use sdds_xpath::{Axis, NodeTest};

use crate::automaton::{CompiledPath, CompiledPredicate, CompiledStep, ValueCondition};

/// What a navigational automaton belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Target {
    /// The rule at this index of the engine's rule vector.
    Rule(usize),
    /// The (single) query automaton.
    Query,
}

/// Identifier of a [`DispatchNode`]. Node 0 is the shared initial state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The shared initial state of every automaton.
    pub const ROOT: NodeId = NodeId(0);

    /// The node as a dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Identifier of a [`DispatchEdge`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EdgeId(pub u32);

impl EdgeId {
    /// The edge as a dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Identifier of a [`PredProgram`] in the arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PredId(pub u32);

impl PredId {
    /// The program as a dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An immediate attribute check (`[@name]` / `[@name = "v"]`) with the
/// attribute name interned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttrCheck {
    /// Interned attribute name.
    pub name: Symbol,
    /// Optional value condition.
    pub condition: Option<ValueCondition>,
}

/// One transition of the combined automaton: consuming an element whose name
/// matches `sym` (or anything, for a wildcard) moves a run across this edge.
#[derive(Debug, Clone)]
pub struct DispatchEdge {
    /// Axis constraint relative to the state the run sits on.
    pub axis: Axis,
    /// Interned name the edge waits for; `None` for a wildcard test.
    pub sym: Option<Symbol>,
    /// Immediate attribute checks, decidable on the `open` event.
    pub immediate: Vec<AttrCheck>,
    /// Deferred predicates to spawn as pending instances when the edge fires.
    pub deferred: Vec<PredId>,
    /// Targets whose navigational path is completed by this edge.
    pub accepts: Vec<Target>,
    /// Continuation state, when at least one target has further steps.
    pub to: Option<NodeId>,
}

/// One state of the combined automaton: a shared step prefix of one or more
/// rule objects (and/or the query).
#[derive(Debug, Clone, Default)]
pub struct DispatchNode {
    /// Outgoing transitions.
    pub edges: Vec<EdgeId>,
    /// The `(target, matched step count)` pairs this state represents. Used by
    /// the skip-index satisfiability analysis and by run remapping on rule
    /// updates.
    pub positions: Vec<(Target, u32)>,
}

/// One step of a compiled predicate path, over symbols.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PredStep {
    /// Axis from the previous step (or the context node).
    pub axis: Axis,
    /// Interned name; `None` for a wildcard test.
    pub sym: Option<Symbol>,
}

/// A deferred predicate compiled once and shared (arena-backed) by every
/// pending instance it spawns.
#[derive(Debug, Clone)]
pub struct PredProgram {
    /// Steps of the relative path; **empty** for a self-text predicate
    /// (`[.]` / `[. = "v"]`), which watches the context element's direct text.
    pub steps: Vec<PredStep>,
    /// If set, the predicate targets this attribute of the final element.
    pub attribute: Option<Symbol>,
    /// Optional value condition on the final element text / attribute.
    pub condition: Option<ValueCondition>,
}

impl PredProgram {
    /// True for a `[.]` / `[. = "v"]` predicate on the context element itself.
    pub fn is_self_text(&self) -> bool {
        self.steps.is_empty()
    }
}

/// The combined transition structure of all installed rules plus the query.
#[derive(Debug, Clone, Default)]
pub struct DispatchTable {
    symbols: SymbolTable,
    nodes: Vec<DispatchNode>,
    edges: Vec<DispatchEdge>,
    preds: Vec<PredProgram>,
    /// Dedup index for the predicate arena (append-only across rebuilds).
    pred_index: HashMap<CompiledPredicate, PredId>,
    /// Initial transitions by symbol: the per-event entry point replacing the
    /// per-rule candidate loop of the baseline engine.
    root_named: HashMap<Symbol, Vec<EdgeId>>,
    /// Initial wildcard transitions (fire on every `open` event).
    root_wild: Vec<EdgeId>,
}

impl DispatchTable {
    /// Builds the table for a set of compiled rule paths and an optional query.
    pub fn build<'a, I>(rules: I, query: Option<&CompiledPath>) -> Self
    where
        I: IntoIterator<Item = &'a CompiledPath>,
    {
        let mut table = DispatchTable::default();
        table.rebuild(rules, query);
        table
    }

    /// Rebuilds the trie for a new rule set, keeping the symbol table and the
    /// predicate arena (both append-only) so that symbols and [`PredId`]s held
    /// by live runtime state stay valid.
    pub fn rebuild<'a, I>(&mut self, rules: I, query: Option<&CompiledPath>)
    where
        I: IntoIterator<Item = &'a CompiledPath>,
    {
        self.nodes.clear();
        self.edges.clear();
        self.root_named.clear();
        self.root_wild.clear();
        self.nodes.push(DispatchNode::default());
        for (i, path) in rules.into_iter().enumerate() {
            self.add_path(Target::Rule(i), path);
        }
        if let Some(q) = query {
            self.add_path(Target::Query, q);
        }
        for &e in &self.nodes[NodeId::ROOT.index()].edges {
            match self.edges[e.index()].sym {
                Some(s) => self.root_named.entry(s).or_default().push(e),
                None => self.root_wild.push(e),
            }
        }
    }

    fn add_path(&mut self, target: Target, path: &CompiledPath) {
        let mut node = NodeId::ROOT;
        let len = path.steps.len();
        for (pos, step) in path.steps.iter().enumerate() {
            let edge = self.edge_for(node, step);
            if pos + 1 == len {
                self.edges[edge.index()].accepts.push(target);
            } else {
                let next = match self.edges[edge.index()].to {
                    Some(n) => n,
                    None => {
                        let n = NodeId(self.nodes.len() as u32);
                        self.nodes.push(DispatchNode::default());
                        self.edges[edge.index()].to = Some(n);
                        n
                    }
                };
                self.nodes[next.index()]
                    .positions
                    .push((target, (pos + 1) as u32));
                node = next;
            }
        }
    }

    /// Finds an existing equivalent outgoing edge of `node` or creates one.
    fn edge_for(&mut self, node: NodeId, step: &CompiledStep) -> EdgeId {
        let sym = match &step.test {
            NodeTest::Name(n) => Some(self.symbols.intern(n)),
            NodeTest::Wildcard => None,
        };
        let immediate: Vec<AttrCheck> = step
            .immediate
            .iter()
            .map(|p| match p {
                CompiledPredicate::Attribute { name, condition } => AttrCheck {
                    name: self.symbols.intern(name),
                    // alloc: startup — the dispatch table is built once at session open.
                    condition: condition.clone(),
                },
                // lint: infallible — the compiler splits predicates into
                // immediate (attribute) and deferred before reaching here.
                other => unreachable!("non-attribute immediate predicate {other:?}"),
            })
            // alloc: startup — the dispatch table is built once at session open.
            .collect();
        // alloc: startup — the dispatch table is built once at session open.
        let deferred: Vec<PredId> = step.deferred.iter().map(|p| self.pred_id(p)).collect();
        for &e in &self.nodes[node.index()].edges {
            let edge = &self.edges[e.index()];
            if edge.axis == step.axis
                && edge.sym == sym
                && edge.immediate == immediate
                && edge.deferred == deferred
            {
                return e;
            }
        }
        let id = EdgeId(self.edges.len() as u32);
        self.edges.push(DispatchEdge {
            axis: step.axis,
            sym,
            immediate,
            deferred,
            accepts: Vec::new(),
            to: None,
        });
        self.nodes[node.index()].edges.push(id);
        id
    }

    /// Interns a deferred predicate into the arena, deduplicating structurally
    /// equal predicates across steps, rules and rebuilds.
    fn pred_id(&mut self, pred: &CompiledPredicate) -> PredId {
        if let Some(&id) = self.pred_index.get(pred) {
            return id;
        }
        let program = match pred {
            CompiledPredicate::SelfText { condition } => PredProgram {
                steps: Vec::new(),
                attribute: None,
                // alloc: startup — the dispatch table is built once at session open.
                condition: condition.clone(),
            },
            CompiledPredicate::RelPath {
                steps,
                attribute,
                condition,
            } => PredProgram {
                steps: steps
                    .iter()
                    .map(|s| PredStep {
                        axis: s.axis,
                        sym: match &s.test {
                            NodeTest::Name(n) => Some(self.symbols.intern(n)),
                            NodeTest::Wildcard => None,
                        },
                    })
                    // alloc: startup — the dispatch table is built once at session open.
                    .collect(),
                attribute: attribute.as_ref().map(|a| self.symbols.intern(a)),
                // alloc: startup — the dispatch table is built once at session open.
                condition: condition.clone(),
            },
            CompiledPredicate::Attribute { .. } => {
                // lint: infallible — `pred_id` is only called for deferred
                // predicates; attribute predicates stay immediate.
                unreachable!("attribute predicates are immediate")
            }
        };
        let id = PredId(self.preds.len() as u32);
        self.preds.push(program);
        // alloc: startup — the dispatch table is built once at session open.
        self.pred_index.insert(pred.clone(), id);
        id
    }

    /// The symbol table (rule vocabulary).
    pub fn symbols(&self) -> &SymbolTable {
        &self.symbols
    }

    /// Number of trie states (including the shared initial state).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of transitions.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Number of predicate programs in the arena.
    pub fn pred_count(&self) -> usize {
        self.preds.len()
    }

    /// A state of the trie.
    pub fn node(&self, id: NodeId) -> &DispatchNode {
        &self.nodes[id.index()]
    }

    /// A transition.
    pub fn edge(&self, id: EdgeId) -> &DispatchEdge {
        &self.edges[id.index()]
    }

    /// A predicate program.
    pub fn pred(&self, id: PredId) -> &PredProgram {
        &self.preds[id.index()]
    }

    /// Initial transitions that can fire on an element with this (looked-up)
    /// symbol: the named ones for `Some(sym)` plus every wildcard one.
    pub fn root_edges(&self, sym: Option<Symbol>) -> impl Iterator<Item = EdgeId> + '_ {
        let named = sym
            .and_then(|s| self.root_named.get(&s))
            .map(Vec::as_slice)
            .unwrap_or(&[]);
        named.iter().chain(self.root_wild.iter()).copied()
    }

    /// Maps every `(target, matched step count)` pair to its trie state; used
    /// to remap live runs after a rebuild.
    pub fn position_map(&self) -> HashMap<(Target, u32), NodeId> {
        let mut map = HashMap::new();
        for (i, node) in self.nodes.iter().enumerate() {
            for &(target, pos) in &node.positions {
                map.insert((target, pos), NodeId(i as u32));
            }
        }
        map
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::automaton::compile_str;

    fn table_for(exprs: &[&str]) -> DispatchTable {
        let paths: Vec<CompiledPath> = exprs.iter().map(|e| compile_str(e).unwrap()).collect();
        DispatchTable::build(&paths, None)
    }

    #[test]
    fn identical_rules_collapse_to_one_path() {
        let t = table_for(&["//patient/name", "//patient/name", "//patient/name"]);
        // root + one shared interior node.
        assert_eq!(t.node_count(), 2);
        assert_eq!(t.edge_count(), 2);
        let root_patient: Vec<EdgeId> = t.root_edges(t.symbols().lookup("patient")).collect();
        assert_eq!(root_patient.len(), 1);
        let final_edge = t.node(t.edge(root_patient[0]).to.unwrap()).edges[0];
        assert_eq!(
            t.edge(final_edge).accepts,
            vec![Target::Rule(0), Target::Rule(1), Target::Rule(2)]
        );
    }

    #[test]
    fn common_prefixes_are_shared_and_divergences_split() {
        let t = table_for(&["//acts/act/report", "//acts/act/date", "//acts/summary"]);
        // root -acts-> n1 -act-> n2 -report|date-> accept, n1 -summary-> accept
        assert_eq!(t.node_count(), 3);
        assert_eq!(t.edge_count(), 5);
        let acts = t.symbols().lookup("acts").unwrap();
        let root: Vec<EdgeId> = t.root_edges(Some(acts)).collect();
        assert_eq!(root.len(), 1);
        let n1 = t.edge(root[0]).to.unwrap();
        assert_eq!(t.node(n1).edges.len(), 2);
        assert_eq!(
            t.node(n1).positions,
            vec![
                (Target::Rule(0), 1),
                (Target::Rule(1), 1),
                (Target::Rule(2), 1)
            ]
        );
    }

    #[test]
    fn steps_with_different_predicates_do_not_share_an_edge() {
        let t = table_for(&["//act[@type = \"surgery\"]/report", "//act/report"]);
        let act = t.symbols().lookup("act").unwrap();
        assert_eq!(t.root_edges(Some(act)).count(), 2);
    }

    #[test]
    fn unknown_symbols_only_fire_wildcards() {
        let t = table_for(&["//a/b", "//*"]);
        assert_eq!(t.symbols().lookup("zzz"), None);
        let edges: Vec<EdgeId> = t.root_edges(None).collect();
        assert_eq!(edges.len(), 1);
        assert!(t.edge(edges[0]).sym.is_none());
    }

    #[test]
    fn predicate_programs_are_deduplicated_in_the_arena() {
        let t = table_for(&["//b[c]/d", "//x[c]/y", "//z[. = \"v\"]"]);
        // [c] occurs in two rules but compiles to one program; [. = "v"] is a
        // self-text program with no steps.
        assert_eq!(t.pred_count(), 2);
        let self_text = (0..t.pred_count())
            .map(|i| t.pred(PredId(i as u32)))
            .find(|p| p.is_self_text())
            .unwrap();
        assert!(self_text.condition.is_some());
    }

    #[test]
    fn rebuild_keeps_symbols_and_predicates_stable() {
        let p1 = compile_str("//b[c]/d").unwrap();
        let p2 = compile_str("//e[c]").unwrap();
        let mut t = DispatchTable::build(std::slice::from_ref(&p1), None);
        let b = t.symbols().lookup("b").unwrap();
        assert_eq!(t.pred_count(), 1);
        t.rebuild(&[p1.clone(), p2], None);
        assert_eq!(t.symbols().lookup("b"), Some(b), "symbols are append-only");
        assert_eq!(t.pred_count(), 1, "shared [c] program is reused");
        t.rebuild(&[p1], None);
        assert_eq!(t.pred_count(), 1, "arena never shrinks");
        assert_eq!(t.symbols().lookup("b"), Some(b));
    }

    #[test]
    fn position_map_covers_every_interior_state() {
        let t = table_for(&["/a/b/c", "//a/b"]);
        let map = t.position_map();
        assert!(map.contains_key(&(Target::Rule(0), 1)));
        assert!(map.contains_key(&(Target::Rule(0), 2)));
        assert!(map.contains_key(&(Target::Rule(1), 1)));
        assert!(
            !map.contains_key(&(Target::Rule(1), 2)),
            "final states are edges"
        );
    }

    #[test]
    fn query_target_is_tracked_separately() {
        let rules = vec![compile_str("//a/b").unwrap()];
        let query = compile_str("//a/c").unwrap();
        let t = DispatchTable::build(&rules, Some(&query));
        let a = t.symbols().lookup("a").unwrap();
        let root: Vec<EdgeId> = t.root_edges(Some(a)).collect();
        assert_eq!(root.len(), 1, "rule and query share the //a prefix");
        let n = t.edge(root[0]).to.unwrap();
        assert!(t.node(n).positions.contains(&(Target::Query, 1)));
        assert_eq!(t.node(n).edges.len(), 2);
    }
}
