//! The smart-card runtime: hardware profile, on-card resources and the applet
//! dispatch loop.
//!
//! `sdds-core` implements the access-control engine as an [`Applet`]; the
//! terminal proxy talks to it exclusively through APDUs routed by
//! [`CardRuntime::exchange`], which is where every byte crossing the
//! terminal↔card boundary is metered. Nothing in the architecture lets the
//! terminal observe card state except through responses — mirroring the trust
//! model of the paper, where the terminal is untrusted and only the SOE is
//! tamper-resistant.

use sdds_crypto::KeyRing;

use crate::apdu::{Apdu, ApduResponse, StatusWord};
use crate::cost::{CostLedger, CostModel};
use crate::error::CardError;
use crate::resources::{EepromBudget, RamBudget};

/// Hardware profile of a card.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CardProfile {
    /// Secure working memory available to the applet, in bytes.
    pub ram_bytes: usize,
    /// Secure stable storage available to the applet, in bytes.
    pub eeprom_bytes: usize,
    /// Cost model (channel + processor rates).
    pub cost: CostModel,
    /// Human readable name used in reports.
    pub name: &'static str,
}

impl CardProfile {
    /// The Axalto e-gate card used by the demonstrator: 1 KB of RAM for the
    /// application, 32 KB of EEPROM, 2 KB/s channel.
    pub fn egate() -> Self {
        CardProfile {
            ram_bytes: 1024,
            eeprom_bytes: 32 * 1024,
            cost: CostModel::egate(),
            name: "axalto-egate",
        }
    }

    /// A contemporary secure element with 8 KB of applet RAM.
    pub fn modern_secure_element() -> Self {
        CardProfile {
            ram_bytes: 8 * 1024,
            eeprom_bytes: 256 * 1024,
            cost: CostModel::modern_secure_element(),
            name: "modern-se",
        }
    }

    /// A loose profile used by tests that only care about functional
    /// behaviour, not the memory constraint.
    pub fn unconstrained() -> Self {
        CardProfile {
            ram_bytes: 16 * 1024 * 1024,
            eeprom_bytes: 16 * 1024 * 1024,
            cost: CostModel::egate(),
            name: "unconstrained",
        }
    }
}

/// The emulated card: resources, key storage and cost counters.
#[derive(Debug)]
pub struct SmartCard {
    profile: CardProfile,
    ram: RamBudget,
    eeprom: EepromBudget,
    keys: KeyRing,
    ledger: CostLedger,
}

impl SmartCard {
    /// Powers up a card with the given profile.
    pub fn new(profile: CardProfile) -> Self {
        SmartCard {
            ram: RamBudget::new(profile.ram_bytes),
            eeprom: EepromBudget::new(profile.eeprom_bytes),
            keys: KeyRing::new(),
            ledger: CostLedger::new(),
            profile,
        }
    }

    /// The hardware profile.
    pub fn profile(&self) -> &CardProfile {
        &self.profile
    }

    /// Secure working memory budget.
    pub fn ram(&mut self) -> &mut RamBudget {
        &mut self.ram
    }

    /// Read-only view of the RAM budget.
    pub fn ram_ref(&self) -> &RamBudget {
        &self.ram
    }

    /// Secure stable storage budget.
    pub fn eeprom(&mut self) -> &mut EepromBudget {
        &mut self.eeprom
    }

    /// Key ring stored in secure stable memory.
    pub fn keys(&mut self) -> &mut KeyRing {
        &mut self.keys
    }

    /// Read-only key ring.
    pub fn keys_ref(&self) -> &KeyRing {
        &self.keys
    }

    /// Cost counters of the current session.
    pub fn ledger(&mut self) -> &mut CostLedger {
        &mut self.ledger
    }

    /// Read-only cost counters.
    pub fn ledger_ref(&self) -> &CostLedger {
        &self.ledger
    }

    /// Resets the per-session counters (RAM accounting and ledger), keeping
    /// persistent state (keys, EEPROM contents).
    pub fn reset_session(&mut self) {
        self.ram.reset();
        self.ram.reset_peak();
        self.ledger = CostLedger::new();
    }
}

/// An on-card application processing APDUs.
pub trait Applet {
    /// Processes one command APDU with access to the card resources.
    fn process(&mut self, card: &mut SmartCard, command: &Apdu) -> ApduResponse;

    /// Name of the applet, for diagnostics.
    fn name(&self) -> &str {
        "applet"
    }
}

/// The runtime pairing a card with an applet and metering the channel.
pub struct CardRuntime<A: Applet> {
    card: SmartCard,
    applet: A,
}

impl<A: Applet> CardRuntime<A> {
    /// Installs `applet` on a card with the given profile.
    pub fn new(profile: CardProfile, applet: A) -> Self {
        CardRuntime {
            card: SmartCard::new(profile),
            applet,
        }
    }

    /// Performs one APDU exchange: the command payload and the response
    /// payload are both charged to the channel meter.
    pub fn exchange(&mut self, command: &Apdu) -> ApduResponse {
        if command.data.len() > self.card.profile.cost.channel.max_apdu_data {
            return ApduResponse::error(StatusWord::WRONG_LENGTH);
        }
        let to_card = command.wire_len();
        let response = self.applet.process(&mut self.card, command);
        let from_card = response.wire_len();
        self.card.ledger.channel.record_exchange(to_card, from_card);
        response
    }

    /// Performs an exchange and turns non-success status words into errors.
    pub fn exchange_expect_ok(&mut self, command: &Apdu) -> Result<Vec<u8>, CardError> {
        let response = self.exchange(command);
        if response.status.is_ok() {
            Ok(response.data)
        } else {
            Err(CardError::Refused {
                status: response.status.0,
                // alloc: cold — refused-instruction error path.
                reason: format!(
                    "instruction 0x{:02X} refused by applet `{}`",
                    command.ins,
                    self.applet.name()
                ),
            })
        }
    }

    /// Access to the card (for reports and assertions; the terminal-side code
    /// of the system never uses this — it only sees APDU responses).
    pub fn card(&self) -> &SmartCard {
        &self.card
    }

    /// Mutable access to the card (tests and reports only).
    pub fn card_mut(&mut self) -> &mut SmartCard {
        &mut self.card
    }

    /// Access to the applet.
    pub fn applet(&self) -> &A {
        &self.applet
    }

    /// Mutable access to the applet.
    pub fn applet_mut(&mut self) -> &mut A {
        &mut self.applet
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apdu::ins;

    /// A toy applet that stores bytes in RAM and echoes them back.
    struct EchoApplet {
        stored: Vec<u8>,
    }

    impl Applet for EchoApplet {
        fn process(&mut self, card: &mut SmartCard, command: &Apdu) -> ApduResponse {
            match command.ins {
                ins::PUSH_CHUNK => {
                    if card.ram().allocate(command.data.len()).is_err() {
                        return ApduResponse::error(StatusWord::MEMORY_FAILURE);
                    }
                    self.stored.extend_from_slice(&command.data);
                    ApduResponse::ok_empty()
                }
                ins::GET_OUTPUT => ApduResponse::ok(self.stored.clone()),
                _ => ApduResponse::error(StatusWord::INS_NOT_SUPPORTED),
            }
        }

        fn name(&self) -> &str {
            "echo"
        }
    }

    #[test]
    fn profiles_expose_expected_constraints() {
        let egate = CardProfile::egate();
        assert_eq!(egate.ram_bytes, 1024);
        assert!((egate.cost.channel.bytes_per_second - 2048.0).abs() < 1e-9);
        assert!(CardProfile::modern_secure_element().ram_bytes > egate.ram_bytes);
        assert!(CardProfile::unconstrained().ram_bytes > 1 << 20);
    }

    #[test]
    fn runtime_meters_every_exchange() {
        let mut rt = CardRuntime::new(CardProfile::egate(), EchoApplet { stored: vec![] });
        let cmd = Apdu::new(ins::PUSH_CHUNK, 0, 0, vec![1, 2, 3, 4]).unwrap();
        let resp = rt.exchange(&cmd);
        assert!(resp.status.is_ok());
        let meter = &rt.card().ledger_ref().channel;
        assert_eq!(meter.apdu_exchanges, 1);
        assert_eq!(meter.bytes_to_card, cmd.wire_len());
        assert_eq!(meter.bytes_from_card, 2); // empty data + status word

        let out = rt
            .exchange_expect_ok(&Apdu::simple(ins::GET_OUTPUT, 0, 0))
            .unwrap();
        assert_eq!(out, vec![1, 2, 3, 4]);
        assert_eq!(rt.card().ledger_ref().channel.apdu_exchanges, 2);
    }

    #[test]
    fn unsupported_instruction_maps_to_error() {
        let mut rt = CardRuntime::new(CardProfile::egate(), EchoApplet { stored: vec![] });
        let err = rt
            .exchange_expect_ok(&Apdu::simple(0xFF, 0, 0))
            .unwrap_err();
        assert!(matches!(err, CardError::Refused { status: 0x6D00, .. }));
    }

    #[test]
    fn ram_exhaustion_surfaces_as_memory_failure() {
        let mut rt = CardRuntime::new(CardProfile::egate(), EchoApplet { stored: vec![] });
        // The e-gate has 1 KiB of RAM; pushing five 255-byte chunks overruns it.
        let chunk = vec![0u8; 255];
        for i in 0..4 {
            let resp = rt.exchange(&Apdu::new(ins::PUSH_CHUNK, i, 0, chunk.clone()).unwrap());
            assert!(resp.status.is_ok(), "chunk {i} should fit");
        }
        let resp = rt.exchange(&Apdu::new(ins::PUSH_CHUNK, 9, 0, chunk).unwrap());
        assert_eq!(resp.status, StatusWord::MEMORY_FAILURE);
        assert!(rt.card().ram_ref().peak() <= 1024);
    }

    #[test]
    fn reset_session_clears_counters_but_keeps_keys() {
        use sdds_crypto::{KeyId, SecretKey};
        let mut card = SmartCard::new(CardProfile::egate());
        card.keys()
            .install(KeyId(1), SecretKey::from_bytes([1; 16]))
            .unwrap();
        card.ram().allocate(100).unwrap();
        card.ledger().record_decrypt(10);
        card.reset_session();
        assert_eq!(card.ram_ref().in_use(), 0);
        assert_eq!(card.ledger_ref().bytes_decrypted, 0);
        assert!(card.keys_ref().contains(KeyId(1)));
        assert_eq!(card.profile().name, "axalto-egate");
    }
}
