//! Terminal ↔ card communication channel model.
//!
//! The e-gate card of the demo exchanges data at roughly **2 KB/s** over the
//! APDU link, which together with on-card decryption is one of "the two
//! limiting factors of the target architecture" (§2.3). The channel model
//! converts transferred bytes and APDU round-trips into simulated time and
//! keeps byte counters in both directions, so that every experiment can report
//! "bytes shipped to the card" and "time spent on the wire" exactly.

use std::time::Duration;

/// Static parameters of a channel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChannelModel {
    /// Sustained throughput, bytes per second.
    pub bytes_per_second: f64,
    /// Fixed latency charged per APDU exchange (command + response pair).
    pub per_apdu_latency: Duration,
    /// Maximum data payload per APDU.
    pub max_apdu_data: usize,
}

impl ChannelModel {
    /// The e-gate profile of the demo: 2 KB/s, 2 ms per exchange, short APDUs.
    pub fn egate() -> Self {
        ChannelModel {
            bytes_per_second: 2048.0,
            per_apdu_latency: Duration::from_millis(2),
            max_apdu_data: 255,
        }
    }

    /// A contact-less / USB-class channel (two orders of magnitude faster),
    /// used in the ablation that asks how much of the skip-index benefit
    /// remains when the channel stops being the bottleneck.
    pub fn usb() -> Self {
        ChannelModel {
            bytes_per_second: 1_000_000.0,
            per_apdu_latency: Duration::from_micros(100),
            max_apdu_data: 255,
        }
    }

    /// An idealised infinite channel (costs nothing), isolating on-card costs.
    pub fn infinite() -> Self {
        ChannelModel {
            bytes_per_second: f64::INFINITY,
            per_apdu_latency: Duration::ZERO,
            max_apdu_data: 255,
        }
    }

    /// Time needed to push `bytes` through the channel in `apdus` exchanges.
    pub fn transfer_time(&self, bytes: usize, apdus: usize) -> Duration {
        let wire = if self.bytes_per_second.is_finite() && self.bytes_per_second > 0.0 {
            Duration::from_secs_f64(bytes as f64 / self.bytes_per_second)
        } else {
            Duration::ZERO
        };
        wire + self.per_apdu_latency * apdus as u32
    }

    /// Number of APDUs needed to move `bytes` of payload in one direction.
    pub fn apdus_for(&self, bytes: usize) -> usize {
        if bytes == 0 {
            1
        } else {
            bytes.div_ceil(self.max_apdu_data)
        }
    }
}

/// Byte and APDU counters of a session.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChannelMeter {
    /// Payload bytes sent from the terminal to the card.
    pub bytes_to_card: usize,
    /// Payload bytes sent from the card to the terminal.
    pub bytes_from_card: usize,
    /// Number of APDU exchanges.
    pub apdu_exchanges: usize,
}

impl ChannelMeter {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        ChannelMeter::default()
    }

    /// Records one exchange of `to_card` payload bytes and `from_card`
    /// response bytes.
    pub fn record_exchange(&mut self, to_card: usize, from_card: usize) {
        self.bytes_to_card += to_card;
        self.bytes_from_card += from_card;
        self.apdu_exchanges += 1;
    }

    /// Total payload bytes in both directions.
    pub fn total_bytes(&self) -> usize {
        self.bytes_to_card + self.bytes_from_card
    }

    /// Simulated time spent on the wire under `model`.
    pub fn elapsed(&self, model: &ChannelModel) -> Duration {
        model.transfer_time(self.total_bytes(), self.apdu_exchanges)
    }

    /// Merges another meter into this one (used when aggregating sessions).
    pub fn merge(&mut self, other: &ChannelMeter) {
        self.bytes_to_card += other.bytes_to_card;
        self.bytes_from_card += other.bytes_from_card;
        self.apdu_exchanges += other.apdu_exchanges;
    }
}

/// Coalesces several queued request/response transfers into shared APDU
/// batches.
///
/// The per-request accounting of [`ChannelMeter`] charges every logical
/// exchange its own APDU round-trip, even when the payload is far below
/// [`ChannelModel::max_apdu_data`] — the dominant cost of serving many small
/// chunk requests on a high-latency link. A `BatchedChannel` instead queues
/// the pending transfers and, on [`BatchedChannel::flush`], packs the queued
/// bytes of each direction into as few APDUs as the payload cap allows,
/// charging one [`ChannelModel::per_apdu_latency`] per *batch APDU* instead of
/// one per request. The multi-client DSP service uses this for its fan-out
/// serving loop: all chunk pushes of one scheduler quantum ride one batch.
///
/// Byte counters are identical to per-request accounting (batching never
/// changes *what* is transferred, only how many round-trips carry it); the
/// saving is visible in [`ChannelMeter::apdu_exchanges`] and in the simulated
/// elapsed time.
#[derive(Debug, Clone)]
pub struct BatchedChannel {
    model: ChannelModel,
    /// Queued `(to_card, from_card)` transfers awaiting the next flush.
    pending: Vec<(usize, usize)>,
    meter: ChannelMeter,
    batches: usize,
    /// APDU exchanges a per-request accounting would have charged.
    unbatched_apdus: usize,
}

impl BatchedChannel {
    /// Creates an empty batching meter over `model`.
    pub fn new(model: ChannelModel) -> Self {
        BatchedChannel {
            model,
            pending: Vec::new(),
            meter: ChannelMeter::new(),
            batches: 0,
            unbatched_apdus: 0,
        }
    }

    /// The channel model batches are charged against.
    pub fn model(&self) -> &ChannelModel {
        &self.model
    }

    /// Queues one logical request of `to_card` command bytes and `from_card`
    /// response bytes for the next batch.
    pub fn queue(&mut self, to_card: usize, from_card: usize) {
        self.pending.push((to_card, from_card));
    }

    /// Number of requests waiting for the next flush.
    pub fn queued(&self) -> usize {
        self.pending.len()
    }

    /// Flushes the queued requests as one batch and returns the simulated
    /// time of that batch. A no-op returning zero when nothing is queued.
    pub fn flush(&mut self) -> Duration {
        if self.pending.is_empty() {
            return Duration::ZERO;
        }
        let mut to_total = 0usize;
        let mut from_total = 0usize;
        for (to_card, from_card) in self.pending.drain(..) {
            to_total += to_card;
            from_total += from_card;
            // What per-request accounting would have charged: every request is
            // at least one exchange, fragmented on its larger direction.
            self.unbatched_apdus += self
                .model
                .apdus_for(to_card)
                .max(self.model.apdus_for(from_card));
        }
        // One exchange carries up to `max_apdu_data` each way, so the batch
        // needs as many exchanges as its larger direction.
        let apdus = self
            .model
            .apdus_for(to_total)
            .max(self.model.apdus_for(from_total));
        self.batches += 1;
        self.meter.bytes_to_card += to_total;
        self.meter.bytes_from_card += from_total;
        self.meter.apdu_exchanges += apdus;
        self.model.transfer_time(to_total + from_total, apdus)
    }

    /// Byte and APDU counters accumulated by flushed batches.
    pub fn meter(&self) -> &ChannelMeter {
        &self.meter
    }

    /// Batches flushed so far.
    pub fn batches(&self) -> usize {
        self.batches
    }

    /// APDU exchanges saved versus charging every request its own exchange.
    pub fn apdus_saved(&self) -> usize {
        self.unbatched_apdus
            .saturating_sub(self.meter.apdu_exchanges)
    }

    /// Total simulated time of everything flushed so far.
    pub fn elapsed(&self) -> Duration {
        self.meter.elapsed(&self.model)
    }

    /// Simulated time the same transfers would have cost without batching.
    pub fn unbatched_elapsed(&self) -> Duration {
        self.model
            .transfer_time(self.meter.total_bytes(), self.unbatched_apdus)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn egate_is_two_kilobytes_per_second() {
        let m = ChannelModel::egate();
        let t = m.transfer_time(2048, 0);
        assert!((t.as_secs_f64() - 1.0).abs() < 1e-9);
        // 10 APDUs add 20 ms.
        let t = m.transfer_time(0, 10);
        assert_eq!(t, Duration::from_millis(20));
    }

    #[test]
    fn infinite_channel_costs_nothing() {
        let m = ChannelModel::infinite();
        assert_eq!(m.transfer_time(1 << 20, 1000), Duration::ZERO);
    }

    #[test]
    fn apdu_count_rounds_up() {
        let m = ChannelModel::egate();
        assert_eq!(m.apdus_for(0), 1);
        assert_eq!(m.apdus_for(1), 1);
        assert_eq!(m.apdus_for(255), 1);
        assert_eq!(m.apdus_for(256), 2);
        assert_eq!(m.apdus_for(1000), 4);
    }

    #[test]
    fn meter_accumulates_and_merges() {
        let mut a = ChannelMeter::new();
        a.record_exchange(100, 20);
        a.record_exchange(255, 0);
        assert_eq!(a.bytes_to_card, 355);
        assert_eq!(a.bytes_from_card, 20);
        assert_eq!(a.apdu_exchanges, 2);
        assert_eq!(a.total_bytes(), 375);

        let mut b = ChannelMeter::new();
        b.record_exchange(5, 5);
        a.merge(&b);
        assert_eq!(a.total_bytes(), 385);
        assert_eq!(a.apdu_exchanges, 3);

        let elapsed = a.elapsed(&ChannelModel::egate());
        assert!(elapsed > Duration::from_millis(6));
    }

    #[test]
    fn usb_is_faster_than_egate() {
        let bytes = 100_000;
        let egate = ChannelModel::egate();
        let usb = ChannelModel::usb();
        assert!(usb.transfer_time(bytes, 10) < egate.transfer_time(bytes, 10));
    }

    #[test]
    fn batching_small_requests_shares_apdus() {
        // Eight 60-byte requests: per-request accounting pays 8 exchanges,
        // one batch packs 480 bytes into ceil(480/255) = 2 exchanges.
        let mut batched = BatchedChannel::new(ChannelModel::egate());
        for _ in 0..8 {
            batched.queue(60, 0);
        }
        assert_eq!(batched.queued(), 8);
        let time = batched.flush();
        assert_eq!(batched.queued(), 0);
        assert_eq!(batched.batches(), 1);
        assert_eq!(batched.meter().apdu_exchanges, 2);
        assert_eq!(batched.meter().bytes_to_card, 480);
        assert_eq!(batched.apdus_saved(), 6);
        assert!(time < batched.unbatched_elapsed());
        assert_eq!(time, batched.elapsed());
    }

    #[test]
    fn batch_exchanges_follow_the_larger_direction() {
        let mut batched = BatchedChannel::new(ChannelModel::egate());
        batched.queue(10, 600); // responses dominate: ceil(600/255) = 3
        batched.queue(10, 0);
        batched.flush();
        assert_eq!(batched.meter().apdu_exchanges, 3);
        assert_eq!(batched.meter().bytes_from_card, 600);
        assert_eq!(batched.meter().bytes_to_card, 20);
    }

    #[test]
    fn empty_flush_is_free_and_byte_totals_match_per_request_accounting() {
        let mut batched = BatchedChannel::new(ChannelModel::egate());
        assert_eq!(batched.flush(), Duration::ZERO);
        assert_eq!(batched.batches(), 0);

        let mut per_request = ChannelMeter::new();
        for (to, from) in [(100, 20), (255, 0), (5, 5)] {
            batched.queue(to, from);
            per_request.record_exchange(to, from);
        }
        batched.flush();
        // Batching never changes what is transferred, only the round-trips.
        assert_eq!(batched.meter().total_bytes(), per_request.total_bytes());
        assert!(batched.meter().apdu_exchanges <= per_request.apdu_exchanges);
        assert_eq!(batched.model().max_apdu_data, 255);
    }
}
