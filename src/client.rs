//! The top-level facade of the workspace: [`Publisher`] and [`Client`].
//!
//! The paper's §3 proxy promises applications "an XML API independent of the
//! underlying protocols (JDBC, APDU)". These two types are that API:
//!
//! * a [`Publisher`] is the trusted side of a community — it owns the master
//!   secrets and the access policy, encrypts documents onto the (untrusted,
//!   sharded) [`DspService`], and keeps the protected per-subject rule blobs
//!   stored there in sync with the policy;
//! * a [`Client`] is one user's terminal + smart card — built by
//!   [`Client::builder`], which wires the simulated PKI, the card hardware
//!   profile and a `DspService` handle, and provisioned against a publisher.
//!
//! Every pull goes through the *same* serving path, whatever the deployment
//! size: a 1-shard service behind a single-user demo and a 16-shard service
//! behind a scheduler fleet serve byte-identical views (pinned by
//! `tests/facade_equivalence.rs`). Applications choose between the full card
//! path ([`Client::authorized_view`], APDUs and all) and the incremental
//! event iterator ([`Client::open_stream`] → [`ViewStream`]).

use sdds_sync::sync::{Arc, Mutex, MutexExt};
use std::collections::BTreeSet;

use sdds_card::CardProfile;
use sdds_core::engine::{EngineConfig, SecureEvaluationSession, DEFAULT_DOC_KEY_ID, RULES_KEY_ID};
use sdds_core::evaluator::EvaluatorConfig;
use sdds_core::rule::{RuleSet, Sign, Subject};
use sdds_core::secdoc::SecureDocumentBuilder;
use sdds_core::session::{KeyProvisioning, ProtectedRules, TrustedServer};
use sdds_core::{AccessPolicy, Query};
use sdds_crypto::SecretKey;
use sdds_dsp::{DspService, ServerStats};
use sdds_obs::ObsSnapshot;
use sdds_proxy::{CardSession, SimulatedPki, Terminal};
use sdds_xml::Document;

use crate::error::SddsError;
use crate::stream::ViewStream;

/// What [`Publisher::publish`] reports back about an upload.
#[derive(Debug, Clone, Copy)]
pub struct PublishReceipt {
    /// Encrypted chunks the document was cut into.
    pub chunks: usize,
    /// Bytes of embedded skip index.
    pub index_bytes: usize,
    /// Upload revision at the DSP (0 for a first upload).
    pub revision: u64,
}

/// Builder for a [`Publisher`].
#[derive(Debug)]
pub struct PublisherBuilder {
    community_secret: Vec<u8>,
    rules: RuleSet,
    shards: usize,
    replicate: Option<usize>,
    chunk_size: Option<usize>,
}

impl PublisherBuilder {
    /// Number of shards of the backing [`DspService`] (default 1 — the
    /// single-tenant layout; a fleet deployment raises this, and nothing else
    /// about the API changes). `0` is rejected by [`PublisherBuilder::build`]
    /// with [`SddsError::Config`].
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Pins every published document to `copies` serving shards: the service
    /// clones it so reads spread over the copies (hot-document replication —
    /// the E10 hot-document experiment's knob). Clamped to the shard count;
    /// republishing re-replicates the new revision after invalidating the
    /// old clones. Default: no replication.
    pub fn replicate(mut self, copies: usize) -> Self {
        self.replicate = Some(copies);
        self
    }

    /// Initial access policy of the community.
    pub fn rules(mut self, rules: RuleSet) -> Self {
        self.rules = rules;
        self
    }

    /// Chunk size of published documents (default: the secure-document
    /// builder's default).
    pub fn chunk_size(mut self, bytes: usize) -> Self {
        self.chunk_size = Some(bytes);
        self
    }

    /// Builds the publisher over a fresh service.
    ///
    /// Fails with [`SddsError::Config`] on impossible configurations
    /// (`.shards(0)`, `.replicate(0)`) — the lower-level `ShardedStore::new`
    /// documents a silent clamp for the same input, but an application that
    /// explicitly asked for zero shards almost certainly mis-computed its
    /// deployment size, and the facade says so at build time.
    pub fn build(self) -> Result<Publisher, SddsError> {
        if self.shards == 0 {
            return Err(SddsError::Config(
                "shards must be at least 1 (a zero-shard service cannot store anything)".into(),
            ));
        }
        if self.replicate == Some(0) {
            return Err(SddsError::Config(
                "replicate(0) would serve documents from no shard; use 1 for a single copy".into(),
            ));
        }
        let pki = SimulatedPki::new(&self.community_secret);
        Ok(Publisher {
            server: TrustedServer::new(&self.community_secret, self.rules),
            pki,
            service: Arc::new(DspService::new(self.shards)),
            replicate: self.replicate,
            chunk_size: self.chunk_size,
            known_subjects: Mutex::new(BTreeSet::new()),
        })
    }
}

/// The trusted side of a community: master secrets, access policy, and the
/// handle to the untrusted sharded [`DspService`] the encrypted documents and
/// protected rule blobs live on.
#[derive(Debug)]
pub struct Publisher {
    server: TrustedServer,
    pki: SimulatedPki,
    service: Arc<DspService>,
    /// Serving copies every published document is pinned to (hot-document
    /// replication); `None` leaves documents on their home shard only.
    replicate: Option<usize>,
    chunk_size: Option<usize>,
    /// Subjects that were provisioned at least once (possibly outside the
    /// policy, with an empty rule subset): their blobs are refreshed on every
    /// publish / policy change so a later pull finds them at the DSP.
    known_subjects: Mutex<BTreeSet<String>>,
}

impl Publisher {
    /// Starts building a publisher for the community identified by
    /// `community_secret`.
    pub fn builder(community_secret: &[u8]) -> PublisherBuilder {
        PublisherBuilder {
            community_secret: community_secret.to_vec(),
            rules: RuleSet::new(),
            shards: 1,
            replicate: None,
            chunk_size: None,
        }
    }

    /// Convenience constructor: a 1-shard publisher with an initial policy.
    pub fn new(community_secret: &[u8], rules: RuleSet) -> Self {
        Publisher::builder(community_secret)
            .rules(rules)
            .build()
            // lint: infallible — the builder only errors on an explicit
            // out-of-range shard count, which this path never sets.
            .expect("the default publisher configuration is valid")
    }

    /// The trusted server (master secrets, raw policy access).
    pub fn server(&self) -> &TrustedServer {
        &self.server
    }

    /// The community's simulated PKI.
    pub fn pki(&self) -> &SimulatedPki {
        &self.pki
    }

    /// The shared service handle (clone it into schedulers and clients).
    pub fn service(&self) -> &Arc<DspService> {
        &self.service
    }

    /// Current access policy.
    pub fn rules(&self) -> &RuleSet {
        self.server.rules()
    }

    /// Subjects named in the current policy.
    pub fn subjects(&self) -> Vec<Subject> {
        self.server.rules().subjects()
    }

    /// Merged serving statistics of the service.
    pub fn stats(&self) -> ServerStats {
        self.service.stats()
    }

    /// A point-in-time telemetry snapshot of the shared service: serving
    /// counters and latency histograms per shard, scheduler/actor-engine
    /// activity, card-session traffic and the labelled error tallies.
    /// Render it with [`ObsSnapshot::to_json`] or
    /// [`ObsSnapshot::to_prometheus`].
    pub fn obs_snapshot(&self) -> ObsSnapshot {
        self.service.obs_snapshot()
    }

    /// Every subject whose protected rules must be kept on the DSP: the
    /// policy's subjects plus every subject provisioned so far.
    fn served_subjects(&self) -> Vec<Subject> {
        let mut names: BTreeSet<String> = self
            .server
            .rules()
            .subjects()
            .into_iter()
            .map(|s| s.name().to_owned())
            .collect();
        names.extend(self.known_subjects.lock_np().iter().cloned());
        names.into_iter().map(Subject::new).collect()
    }

    /// Encrypts `document` and uploads it (with the protected rule blobs of
    /// every known subject) to the service. Re-publishing under the same id
    /// replaces the document and bumps its revision — sessions opened on the
    /// previous revision fail with [`SddsError::StaleRevision`] on their
    /// next fetch instead of reading torn state. With
    /// [`PublisherBuilder::replicate`], the uploaded revision is pinned to
    /// that many serving shards.
    pub fn publish(&self, doc_id: &str, document: &Document) -> Result<PublishReceipt, SddsError> {
        let mut builder = SecureDocumentBuilder::new(doc_id, self.server.document_key());
        if let Some(chunk_size) = self.chunk_size {
            builder = builder.chunk_size(chunk_size);
        }
        let secure = builder.build(document);
        let receipt = PublishReceipt {
            chunks: secure.chunk_count(),
            index_bytes: secure.encode_stats.index_bytes,
            revision: self.service.revision(doc_id).map_or(0, |r| r + 1),
        };
        self.service.put_document(secure);
        for subject in self.served_subjects() {
            self.service.put_rules(
                doc_id,
                subject.name(),
                &self.server.protected_rules_for(&subject),
            )?;
        }
        // Pin only documents that are not replicated yet (whatever put the
        // single copy there): a republish of an already-pinned document is
        // re-replicated by the store itself (invalidate → new revision →
        // re-clone), so pinning again would just redo that work.
        if let Some(copies) = self.replicate {
            if copies > 1 && self.service.replica_shards(doc_id).len() == 1 {
                self.service.pin_replicas(doc_id, copies)?;
            }
        }
        Ok(receipt)
    }

    /// Changes the policy — adds a `<sign, subject, object>` rule — and
    /// refreshes every protected rule blob stored at the DSP. Nothing happens
    /// to the published documents: no re-encryption, no key redistribution.
    pub fn grant(&mut self, subject: &str, sign: Sign, object: &str) -> Result<(), SddsError> {
        self.server.rules_mut().push(sign, subject, object)?;
        self.sync_rules()
    }

    /// Mutable access to the trusted server, e.g. to edit the policy through
    /// [`TrustedServer::rules_mut`] in ways [`Publisher::grant`] does not
    /// cover (rule removal, bulk edits). Call [`Publisher::sync_rules`]
    /// afterwards so the blobs stored at the DSP reflect the new policy.
    pub fn server_mut(&mut self) -> &mut TrustedServer {
        &mut self.server
    }

    /// Re-seals and re-uploads the protected rule blobs of every known
    /// subject for every stored document (called automatically by
    /// [`Publisher::grant`]; call it directly after editing the policy
    /// through [`Publisher::server_mut`]).
    pub fn sync_rules(&self) -> Result<(), SddsError> {
        let subjects = self.served_subjects();
        for doc_id in self.service.store().document_ids() {
            for subject in &subjects {
                self.service.put_rules(
                    &doc_id,
                    subject.name(),
                    &self.server.protected_rules_for(subject),
                )?;
            }
        }
        Ok(())
    }

    /// Registers `subject` as provisioned: uploads its protected rules (the
    /// — possibly empty — subset of the policy that concerns it) for every
    /// document stored on `service` — the service the client will actually
    /// pull from, which may differ from the publisher's own — and remembers
    /// it for future publishes and syncs.
    fn register(&self, subject: &Subject, service: &Arc<DspService>) -> Result<(), SddsError> {
        let newly_known = self
            .known_subjects
            .lock_np()
            .insert(subject.name().to_owned());
        // On the publisher's own service the blobs of already-known subjects
        // are kept current by `publish` and `sync_rules`: nothing to redo.
        // A foreign service is outside that maintenance loop, so it is
        // (re)filled on every provision.
        if Arc::ptr_eq(service, &self.service) && !newly_known {
            return Ok(());
        }
        let protected = self.server.protected_rules_for(subject);
        for doc_id in service.store().document_ids() {
            service.put_rules(&doc_id, subject.name(), &protected)?;
        }
        Ok(())
    }
}

/// Builder for a [`Client`]: subject, card profile, optional query and
/// policy, and (optionally) an explicit service handle.
#[derive(Debug)]
pub struct ClientBuilder {
    subject: Subject,
    profile: CardProfile,
    service: Option<Arc<DspService>>,
    query: Option<String>,
    open_policy: bool,
}

impl ClientBuilder {
    /// Card hardware profile (default: the modern secure element).
    pub fn card_profile(mut self, profile: CardProfile) -> Self {
        self.profile = profile;
        self
    }

    /// Connects to an explicit service handle instead of the publisher's own
    /// (e.g. a replica service holding the same community's documents). The
    /// subject's protected rule blobs are uploaded to **that** service at
    /// provision time, since that is where its pull sessions will fetch them;
    /// unlike the publisher's own service, a foreign one is not refreshed by
    /// later [`Publisher::publish`] / [`Publisher::grant`] calls — re-provision
    /// after a policy change.
    pub fn service(mut self, service: Arc<DspService>) -> Self {
        self.service = Some(service);
        self
    }

    /// Registers a query: views are intersected with it (§2.1).
    pub fn query(mut self, query: impl Into<String>) -> Self {
        self.query = Some(query.into());
        self
    }

    /// Selects the open-world conflict policy (dissemination scenarios where
    /// only prohibitions filter content). Default: the paper's closed world.
    pub fn open_policy(mut self, open: bool) -> Self {
        self.open_policy = open;
        self
    }

    /// Provisions the client against `publisher`: derives the card transport
    /// key from the community PKI, obtains the wrapped document and rule keys
    /// and a protected-rules snapshot, and registers the subject so its rule
    /// blobs are stored at the DSP (pull sessions fetch them from there).
    pub fn provision(self, publisher: &Publisher) -> Result<Client, SddsError> {
        if let Some(query) = &self.query {
            // Fail at build time, not at first use.
            Query::parse(query)?;
        }
        let subject = self.subject;
        let service = self
            .service
            .unwrap_or_else(|| Arc::clone(publisher.service()));
        publisher.register(&subject, &service)?;
        let transport_key = publisher.pki().card_transport_key(&subject);
        Ok(Client {
            doc_key: publisher
                .server()
                .provision_document_key(&subject, DEFAULT_DOC_KEY_ID),
            rules_key: publisher
                .server()
                .provision_rules_key(&subject, RULES_KEY_ID),
            rules_blob: publisher.server().protected_rules_for(&subject).encode(),
            service,
            subject,
            transport_key,
            profile: self.profile,
            query: self.query,
            open_policy: self.open_policy,
        })
    }
}

/// One user's terminal + smart card, provisioned for a community.
///
/// A client is cheap to keep around: it holds the provisioning material (the
/// PKI transport key and the wrapped keys), not a live card session. Each
/// access issues a fresh personalised card, exactly like the demo terminals
/// of the paper; the cost ledgers of one access are read off the session that
/// served it ([`Client::connect`] + [`CardSession::run`]).
pub struct Client {
    subject: Subject,
    transport_key: SecretKey,
    profile: CardProfile,
    service: Arc<DspService>,
    doc_key: KeyProvisioning,
    rules_key: KeyProvisioning,
    rules_blob: Vec<u8>,
    query: Option<String>,
    open_policy: bool,
}

impl std::fmt::Debug for Client {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Client")
            .field("subject", &self.subject)
            .field("query", &self.query)
            .field("open_policy", &self.open_policy)
            .finish_non_exhaustive()
    }
}

impl Client {
    /// Starts building a client for `subject`.
    pub fn builder(subject: impl Into<String>) -> ClientBuilder {
        ClientBuilder {
            subject: Subject::new(subject),
            profile: CardProfile::modern_secure_element(),
            service: None,
            query: None,
            open_policy: false,
        }
    }

    /// The subject this client's card is personalised for.
    pub fn subject(&self) -> &Subject {
        &self.subject
    }

    /// The service handle this client pulls from.
    pub fn service(&self) -> &Arc<DspService> {
        &self.service
    }

    /// A point-in-time telemetry snapshot of the service this client pulls
    /// from (see [`Publisher::obs_snapshot`]).
    pub fn obs_snapshot(&self) -> ObsSnapshot {
        self.service.obs_snapshot()
    }

    /// The card hardware profile of this client.
    pub fn card_profile(&self) -> CardProfile {
        self.profile
    }

    /// Issues and provisions a fresh terminal + card: keys installed, query
    /// and policy registered. Rules are **not** installed — a pull session
    /// fetches them from the DSP at session start (the paper stores them
    /// there precisely so any terminal can serve any card).
    pub fn terminal(&self) -> Result<Terminal, SddsError> {
        let mut terminal = Terminal::issue_card(
            self.subject.name(),
            self.transport_key.clone(),
            self.profile,
        );
        terminal.set_open_policy(self.open_policy);
        terminal.install_key(&self.doc_key)?;
        terminal.install_key(&self.rules_key)?;
        if let Some(query) = &self.query {
            terminal.set_query(query)?;
        }
        Ok(terminal)
    }

    /// Like [`Client::terminal`], but additionally installs the
    /// provision-time protected-rules snapshot on the card. This is the
    /// push-mode configuration (selective dissemination): items arrive over a
    /// broadcast channel, there is no DSP in the loop, so the card must
    /// already hold its rules.
    pub fn terminal_with_rules(&self) -> Result<Terminal, SddsError> {
        let mut terminal = self.terminal()?;
        terminal.install_rules(&self.rules_blob)?;
        Ok(terminal)
    }

    /// Connects a fresh card to the shared service for one document pull.
    /// Drive the session yourself ([`CardSession::run`]), or submit it to a
    /// [`sdds_dsp::service::SessionScheduler`] along with other clients'.
    pub fn connect(&self, doc_id: impl Into<String>) -> Result<CardSession, SddsError> {
        Ok(self
            .terminal()?
            .connect_shared(Arc::clone(&self.service), doc_id))
    }

    /// Pulls `doc_id` through the full card path (Figure 1: header → chunk
    /// requests → APDUs → reassembled view) and returns the authorized XML
    /// view.
    pub fn authorized_view(&self, doc_id: &str) -> Result<String, SddsError> {
        Ok(self.connect(doc_id)?.run_to_completion()?)
    }

    /// Opens an incremental pull session: a [`ViewStream`] iterating over the
    /// authorized [`sdds_xml::Event`]s of `doc_id`, fetching encrypted chunks
    /// from the service on demand (skipped subtrees are never transferred).
    ///
    /// The SOE runs in-process here — same engine, same keys, same protected
    /// rules (fetched from the DSP and authenticated like the card does),
    /// same RAM budget — so the stream is byte-identical to the card path,
    /// without APDU framing. Use it when the application wants events as they
    /// decrypt instead of one final `String`.
    pub fn open_stream(&self, doc_id: &str) -> Result<ViewStream, SddsError> {
        let doc_key = self.doc_key.unwrap_key(&self.transport_key)?;
        let rules_key = self.rules_key.unwrap_key(&self.transport_key)?;
        // The header fetch pins the upload revision; every later fetch of
        // this stream carries it, so a mid-stream republish is a typed
        // `SddsError::StaleRevision`, never a Merkle mismatch.
        let (header, revision) = self.service.fetch_header_pinned(doc_id)?;
        let blob = self
            .service
            .fetch_rules_pinned(doc_id, self.subject.name(), revision)?;
        let rules = ProtectedRules::decode(&blob)?.open(&rules_key, None)?;

        let mut evaluator = EvaluatorConfig::new(rules, self.subject.name());
        if self.open_policy {
            evaluator = evaluator.with_policy(AccessPolicy::open());
        }
        if let Some(query) = &self.query {
            evaluator = evaluator.with_query(Query::parse(query)?);
        }
        let config = EngineConfig::new(evaluator).with_ram_budget(self.profile.ram_bytes);
        let session = SecureEvaluationSession::open(header, doc_key, config)?;
        Ok(ViewStream::new(
            Arc::clone(&self.service),
            doc_id.to_owned(),
            revision,
            session,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdds_core::baseline::authorized_view_oracle;
    use sdds_xml::writer;

    fn rules() -> RuleSet {
        RuleSet::parse(
            "+, doctor, //patient\n-, doctor, //patient/ssn\n+, secretary, //patient/name",
        )
        .unwrap()
    }

    fn hospital() -> Document {
        sdds_xml::generator::hospital(
            &sdds_xml::generator::HospitalProfile {
                patients: 3,
                ..sdds_xml::generator::HospitalProfile::default()
            },
            &sdds_xml::generator::GeneratorConfig::default(),
        )
    }

    #[test]
    fn publish_provision_and_pull_through_the_facade() {
        let publisher = Publisher::new(b"hospital-2005", rules());
        let doc = hospital();
        let receipt = publisher.publish("folders", &doc).unwrap();
        assert!(receipt.chunks > 0);
        assert_eq!(receipt.revision, 0);

        let client = Client::builder("doctor").provision(&publisher).unwrap();
        let view = client.authorized_view("folders").unwrap();
        let oracle = authorized_view_oracle(
            &doc,
            &rules(),
            &Subject::new("doctor"),
            None,
            &AccessPolicy::paper(),
        );
        assert_eq!(view, writer::to_string(&oracle));
        assert!(view.contains("<patient"));
        assert!(!view.contains("<ssn>"));
        // The service counted the rules blob and the chunks.
        let stats = publisher.stats();
        assert!(stats.rule_blobs_served >= 1);
        assert!(stats.chunks_served > 0);
    }

    #[test]
    fn out_of_policy_subjects_get_an_empty_view_not_an_error() {
        let publisher = Publisher::new(b"hospital-2005", rules());
        publisher.publish("folders", &hospital()).unwrap();
        let outsider = Client::builder("outsider").provision(&publisher).unwrap();
        assert_eq!(outsider.authorized_view("folders").unwrap(), "");
    }

    #[test]
    fn republish_bumps_the_revision_and_keeps_serving() {
        let publisher = Publisher::new(b"hospital-2005", rules());
        let doc = hospital();
        assert_eq!(publisher.publish("folders", &doc).unwrap().revision, 0);
        assert_eq!(publisher.publish("folders", &doc).unwrap().revision, 1);
        assert_eq!(publisher.service().revision("folders"), Some(1));
        let client = Client::builder("doctor").provision(&publisher).unwrap();
        assert!(!client.authorized_view("folders").unwrap().is_empty());
    }

    #[test]
    fn grants_reach_already_provisioned_subjects_via_the_dsp() {
        let mut publisher = Publisher::new(b"hospital-2005", rules());
        publisher.publish("folders", &hospital()).unwrap();
        let nurse = Client::builder("nurse").provision(&publisher).unwrap();
        assert_eq!(nurse.authorized_view("folders").unwrap(), "");
        // The grant re-syncs the protected blobs at the DSP; the very same
        // client (no re-provisioning) picks the new rules up on its next
        // pull, because pull sessions fetch rules from the DSP.
        publisher
            .grant("nurse", Sign::Permit, "//patient/name")
            .unwrap();
        let view = nurse.authorized_view("folders").unwrap();
        assert!(view.contains("<name>"));
        // And the stored document was never touched.
        assert_eq!(publisher.service().revision("folders"), Some(0));
    }

    #[test]
    fn explicit_service_handles_get_the_subjects_rule_blobs() {
        // A replica service of the same community (same secret, hence same
        // document and sealing keys) holds the document but not the doctor's
        // rule blob — provisioning with an explicit `.service(...)` must put
        // the blob where the client will actually pull from.
        let primary = Publisher::new(b"hospital-2005", rules());
        let doc = hospital();
        primary.publish("folders", &doc).unwrap();
        let replica = Publisher::builder(b"hospital-2005").build().unwrap(); // empty policy
        replica.publish("folders", &doc).unwrap();

        let client = Client::builder("doctor")
            .service(Arc::clone(replica.service()))
            .provision(&primary)
            .unwrap();
        let view = client.authorized_view("folders").unwrap();
        assert!(view.contains("<patient"));
        assert!(!view.contains("<ssn>"));
        // The pull really happened on the replica, not on the primary.
        assert!(replica.stats().chunks_served > 0);
        assert_eq!(primary.stats().chunks_served, 0);
    }

    #[test]
    fn queries_and_bad_queries_are_handled_at_build_time() {
        let publisher = Publisher::new(b"hospital-2005", rules());
        publisher.publish("folders", &hospital()).unwrap();
        assert!(Client::builder("doctor")
            .query("//patient[")
            .provision(&publisher)
            .is_err());
        let client = Client::builder("doctor")
            .query("//patient/name")
            .provision(&publisher)
            .unwrap();
        let view = client.authorized_view("folders").unwrap();
        assert!(view.contains("<name>"));
        assert!(!view.contains("<report>"));
    }
}
