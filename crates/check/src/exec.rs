//! The cooperative execution engine behind [`crate::Model`].
//!
//! One *execution* runs the test body once under a fully controlled schedule:
//! every model thread is a real OS thread, but at most one of them is ever
//! *granted* (allowed to run) — all others sleep on the shared condvar until
//! the engine hands them the grant. Every shim operation (lock, atomic,
//! spawn, …) calls back into the engine at a *scheduling point*, where the
//! engine either follows the preset schedule prefix (replay) or extends the
//! schedule with the first untried choice (depth-first search). Blocking
//! semantics (mutexes, rwlocks, condvars, joins) are modelled here, so a
//! schedule in which every thread is blocked is reported as a deadlock (or a
//! lost wakeup, when the blocked threads wait on a condvar) instead of
//! hanging the process.
//!
//! Exclusion needs no memory tricks: since only one model thread runs at a
//! time, the shim guards can hold the real `std::sync` guards underneath, and
//! the engine only ever lets a thread *attempt* a real acquisition it has
//! already granted at the model level — the real lock is always uncontended
//! when touched.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};

/// Model thread id (0 is the execution's main thread).
pub type Tid = usize;

/// Monotonic ids for shim objects (locks, condvars), assigned at construction
/// so an object captured across executions keeps a stable identity.
static NEXT_OBJECT_ID: AtomicU64 = AtomicU64::new(1);

/// Allocates a fresh shim-object id.
pub(crate) fn next_object_id() -> u64 {
    NEXT_OBJECT_ID.fetch_add(1, Ordering::Relaxed)
}

/// How a thread wants (or holds) a lock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Access {
    Shared,
    Exclusive,
}

/// Why a thread is not currently runnable.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Status {
    /// Eligible to be granted the next slice.
    Runnable,
    /// Waiting for a lock to become available.
    Lock { lock: u64, access: Access },
    /// Parked on a condvar, waiting for a notification.
    Condvar { cv: u64 },
    /// Waiting for another model thread to finish.
    Join { child: Tid },
    /// Finished (returned or unwound).
    Done,
}

/// Model state of one lock object.
#[derive(Debug, Default)]
struct LockModel {
    writer: Option<Tid>,
    readers: Vec<Tid>,
}

impl LockModel {
    fn try_grant(&mut self, tid: Tid, access: Access) -> bool {
        match access {
            Access::Shared if self.writer.is_none() => {
                self.readers.push(tid);
                true
            }
            Access::Exclusive if self.writer.is_none() && self.readers.is_empty() => {
                self.writer = Some(tid);
                true
            }
            _ => false,
        }
    }

    fn release(&mut self, tid: Tid) {
        if self.writer == Some(tid) {
            self.writer = None;
        } else if let Some(at) = self.readers.iter().position(|&r| r == tid) {
            self.readers.swap_remove(at);
        }
    }
}

/// One scheduling decision: which of the eligible threads ran next.
#[derive(Debug, Clone)]
pub(crate) struct Choice {
    /// Threads that could have been granted at this point (current thread
    /// first, then ascending tid) — the DFS branches over this list.
    pub eligible: Vec<Tid>,
    /// Index into `eligible` that this execution took.
    pub chosen: usize,
}

/// Why an execution failed.
#[derive(Debug, Clone)]
pub(crate) enum Failure {
    /// A model thread panicked (assertion failure in the test body).
    Panic { tid: Tid, message: String },
    /// No thread is runnable but not every thread is done.
    Deadlock { report: String },
    /// The execution exceeded the per-run scheduling-point budget.
    StepBudget { steps: usize },
}

impl Failure {
    pub(crate) fn message(&self) -> String {
        match self {
            Failure::Panic { tid, message } => {
                format!("thread t{tid} panicked: {message}")
            }
            Failure::Deadlock { report } => report.clone(),
            Failure::StepBudget { steps } => format!(
                "execution exceeded {steps} scheduling points (livelock or \
                 unbounded loop under the model)"
            ),
        }
    }
}

/// Shared state of one execution.
struct ExecState {
    slots: Vec<Status>,
    /// The one thread currently granted a slice (`None` once all are done).
    granted: Option<Tid>,
    /// Schedule taken so far (grows at each scheduling point).
    schedule: Vec<Choice>,
    /// Choice indices to follow before exploring (the DFS/replay prefix).
    preset: Vec<usize>,
    cursor: usize,
    /// Preemptive switches taken so far (bounds the DFS width).
    preemptions: usize,
    preemption_bound: usize,
    max_steps: usize,
    locks: HashMap<u64, LockModel>,
    /// FIFO wait queues per condvar.
    cv_queues: HashMap<u64, Vec<Tid>>,
    failure: Option<Failure>,
    /// Trace of granted tids, for the human-readable counterexample.
    trace: Vec<Tid>,
}

impl ExecState {
    fn all_done(&self) -> bool {
        self.slots.iter().all(|s| *s == Status::Done)
    }

    fn abort_requested(&self) -> bool {
        self.failure.is_some()
    }
}

/// Handle to the engine, shared by every model thread of one execution.
pub(crate) struct Execution {
    state: Mutex<ExecState>,
    wake: Condvar,
}

/// Sentinel panic payload used to unwind model threads once an execution has
/// failed: the thread wrapper recognises it and does not report it as a new
/// failure.
pub(crate) struct AbortUnwind;

/// Per-OS-thread handle: which execution this thread belongs to, and as whom.
#[derive(Clone)]
pub(crate) struct Ctx {
    exec: Arc<Execution>,
    tid: Tid,
}

impl std::fmt::Debug for Ctx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ctx").field("tid", &self.tid).finish()
    }
}

thread_local! {
    static CURRENT: std::cell::RefCell<Option<Ctx>> = const { std::cell::RefCell::new(None) };
}

/// The calling OS thread's model context, if it is a model thread.
pub(crate) fn current_ctx() -> Option<Ctx> {
    // alloc: amortized — `Ctx` is a shared handle; the clone bumps refcounts only.
    CURRENT.with(|c| c.borrow().clone())
}

fn set_ctx(ctx: Option<Ctx>) {
    CURRENT.with(|c| *c.borrow_mut() = ctx);
}

/// Installs (once) a panic hook that silences panics on model threads (the
/// DFS intentionally drives threads into assertion failures thousands of
/// times) and records the failure *at panic time*, before unwinding starts.
/// Early recording matters: unwinding may run `std::thread::scope` exits that
/// OS-join model children, and those children only retire once they observe
/// the recorded failure.
fn install_quiet_hook() {
    static HOOK: OnceLock<()> = OnceLock::new();
    HOOK.get_or_init(|| {
        let default = std::panic::take_hook();
        // alloc: startup — the quiet panic hook installs once per process (`OnceLock`).
        std::panic::set_hook(Box::new(move |info| match current_ctx() {
            None => default(info),
            Some(ctx) => ctx.record_hook_panic(info),
        }));
    });
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        // alloc: cold — panic diagnostics, assembled only after a model thread failed.
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        // alloc: cold — panic diagnostics, assembled only after a model thread failed.
        s.clone()
    } else {
        // alloc: cold — panic diagnostics, assembled only after a model thread failed.
        "non-string panic payload".to_owned()
    }
}

/// Outcome of a scheduling decision.
#[derive(PartialEq)]
enum Picked {
    Ok,
    Aborted,
}

impl Ctx {
    /// This context's model thread id.
    pub(crate) fn tid(&self) -> Tid {
        self.tid
    }

    /// Records a panic observed by the global hook on this model thread and
    /// wakes every parked thread so they retire. Runs before unwinding, so
    /// scope exits executed during the unwind find the children already
    /// abortable. Never panics (it runs inside the panic hook).
    fn record_hook_panic(&self, info: &std::panic::PanicHookInfo<'_>) {
        if info.payload().downcast_ref::<AbortUnwind>().is_some() {
            return;
        }
        let mut st = self
            .exec
            .state
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        if st.failure.is_none() {
            st.failure = Some(Failure::Panic {
                tid: self.tid,
                message: panic_message(info.payload()),
            });
            st.granted = None;
        }
        drop(st);
        self.exec.wake.notify_all();
    }

    /// A plain scheduling point: pick who runs next, then wait for the grant.
    pub(crate) fn point(&self) {
        if std::thread::panicking() {
            return;
        }
        let mut st = self.lock_state();
        st.trace.push(self.tid);
        if self.step_budget(&mut st) == Picked::Aborted
            || self.pick_next(&mut st, true) == Picked::Aborted
        {
            self.abort(st);
        }
        self.wait_granted(st);
    }

    /// Blocks until `lock` can be taken with `access` at the model level.
    /// The real `std` primitive is only touched by the caller *after* this
    /// returns, when the model guarantees it is uncontended.
    pub(crate) fn acquire(&self, lock: u64, access: Access) {
        self.point();
        loop {
            let mut st = self.lock_state();
            if st
                .locks
                .entry(lock)
                .or_default()
                .try_grant(self.tid, access)
            {
                return;
            }
            st.slots[self.tid] = Status::Lock { lock, access };
            if self.pick_next(&mut st, false) == Picked::Aborted {
                self.abort(st);
            }
            self.wait_granted(st);
        }
    }

    /// Releases `lock` and marks every thread blocked on it runnable (they
    /// re-attempt acquisition when next granted). Never blocks and never
    /// panics: it runs from guard destructors, including during unwinding.
    pub(crate) fn release(&self, lock: u64) {
        let Ok(mut st) = self.exec.state.lock() else {
            return;
        };
        if let Some(model) = st.locks.get_mut(&lock) {
            model.release(self.tid);
        }
        for slot in st.slots.iter_mut() {
            if matches!(slot, Status::Lock { lock: l, .. } if *l == lock) {
                *slot = Status::Runnable;
            }
        }
    }

    /// Parks the thread on condvar `cv`. The caller must have released the
    /// associated lock (model and real) first, and re-acquires it after.
    pub(crate) fn cv_wait(&self, cv: u64) {
        let mut st = self.lock_state();
        st.trace.push(self.tid);
        st.cv_queues.entry(cv).or_default().push(self.tid);
        st.slots[self.tid] = Status::Condvar { cv };
        if self.step_budget(&mut st) == Picked::Aborted
            || self.pick_next(&mut st, false) == Picked::Aborted
        {
            self.abort(st);
        }
        self.wait_granted(st);
    }

    /// Wakes waiters of condvar `cv` (FIFO for `notify_one`).
    pub(crate) fn cv_notify(&self, cv: u64, all: bool) {
        self.point();
        let mut st = self.lock_state();
        let woken: Vec<Tid> = match st.cv_queues.entry(cv).or_default() {
            queue if all => std::mem::take(queue),
            queue if queue.is_empty() => Vec::new(),
            // alloc: amortized — wake list of at most one thread id; model-checker scheduler bookkeeping, never the production shim.
            queue => vec![queue.remove(0)],
        };
        for tid in woken {
            st.slots[tid] = Status::Runnable;
        }
    }

    /// Registers a new model thread (runnable, not yet granted) and returns
    /// its tid. No scheduling point here: the child cannot be granted before
    /// its OS thread exists, so the spawner yields (via [`Ctx::point`])
    /// only *after* the real spawn returns — that is where child-first
    /// schedules branch.
    pub(crate) fn register_child(&self) -> Tid {
        let mut st = self.lock_state();
        st.slots.push(Status::Runnable);
        st.slots.len() - 1
    }

    /// Blocks until model thread `child` is done.
    pub(crate) fn join(&self, child: Tid) {
        self.point();
        loop {
            let mut st = self.lock_state();
            if st.slots[child] == Status::Done {
                return;
            }
            st.slots[self.tid] = Status::Join { child };
            if self.pick_next(&mut st, false) == Picked::Aborted {
                self.abort(st);
            }
            self.wait_granted(st);
        }
    }

    /// Marks this thread done, wakes joiners, and hands the grant on. Must
    /// never unwind: it runs on every exit path, including after an abort.
    fn finish(&self) {
        let mut st = self
            .exec
            .state
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        st.slots[self.tid] = Status::Done;
        for slot in st.slots.iter_mut() {
            if matches!(slot, Status::Join { child } if *child == self.tid) {
                *slot = Status::Runnable;
            }
        }
        if st.failure.is_none() {
            // A deadlock discovered here is recorded, not unwound — this
            // thread is retiring either way.
            let _ = self.pick_next(&mut st, false);
        } else {
            st.granted = None;
        }
        drop(st);
        self.exec.wake.notify_all();
    }

    /// Unwinds the calling thread after a recorded failure.
    fn abort(&self, st: MutexGuard<'_, ExecState>) -> ! {
        drop(st);
        self.exec.wake.notify_all();
        std::panic::panic_any(AbortUnwind);
    }

    fn lock_state(&self) -> MutexGuard<'_, ExecState> {
        let st = self
            .exec
            .state
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        if st.abort_requested() {
            drop(st);
            self.exec.wake.notify_all();
            std::panic::panic_any(AbortUnwind);
        }
        st
    }

    fn step_budget(&self, st: &mut ExecState) -> Picked {
        if st.trace.len() > st.max_steps {
            st.failure = Some(Failure::StepBudget {
                steps: st.max_steps,
            });
            st.granted = None;
            return Picked::Aborted;
        }
        Picked::Ok
    }

    /// Picks the next granted thread: follows the preset prefix while it
    /// lasts, then always takes the first eligible thread (the DFS driver
    /// backtracks by extending the preset). `self_runnable` is false when the
    /// caller just blocked or finished. Never unwinds: a deadlock is recorded
    /// and reported as `Picked::Aborted`.
    fn pick_next(&self, st: &mut ExecState, self_runnable: bool) -> Picked {
        let mut runnable: Vec<Tid> = Vec::new();
        if self_runnable {
            runnable.push(self.tid);
        }
        for (tid, slot) in st.slots.iter().enumerate() {
            if *slot == Status::Runnable && !(self_runnable && tid == self.tid) {
                runnable.push(tid);
            }
        }
        if runnable.is_empty() {
            if !st.all_done() {
                st.failure = Some(Failure::Deadlock {
                    report: deadlock_report(st),
                });
                st.granted = None;
                return Picked::Aborted;
            }
            st.granted = None;
            self.exec.wake.notify_all();
            return Picked::Ok;
        }
        // Beyond the preemption bound, a runnable current thread keeps
        // running: the DFS only branches over bounded preemptions (plus every
        // forced switch, which costs nothing against the bound).
        let eligible = if self_runnable
            && st.cursor >= st.preset.len()
            && st.preemptions >= st.preemption_bound
        {
            // alloc: amortized — one-element eligible list past the preemption bound; DFS scheduler bookkeeping, never the production shim.
            vec![self.tid]
        } else {
            runnable
        };
        let chosen = if st.cursor < st.preset.len() {
            let c = st.preset[st.cursor];
            debug_assert!(c < eligible.len(), "preset/schedule divergence");
            c.min(eligible.len() - 1)
        } else {
            0
        };
        let next = eligible[chosen];
        if self_runnable && next != self.tid {
            st.preemptions += 1;
        }
        st.schedule.push(Choice { eligible, chosen });
        st.cursor += 1;
        st.granted = Some(next);
        self.exec.wake.notify_all();
        Picked::Ok
    }

    /// Sleeps until this thread holds the grant (or the execution aborted).
    fn wait_granted(&self, mut st: MutexGuard<'_, ExecState>) {
        loop {
            if st.abort_requested() {
                drop(st);
                self.exec.wake.notify_all();
                std::panic::panic_any(AbortUnwind);
            }
            if st.granted == Some(self.tid) && st.slots[self.tid] == Status::Runnable {
                return;
            }
            st = self
                .exec
                .wake
                .wait(st)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }
}

fn deadlock_report(st: &ExecState) -> String {
    let mut blocked: Vec<String> = Vec::new();
    let mut cv_waiters = 0usize;
    for (tid, slot) in st.slots.iter().enumerate() {
        match slot {
            // alloc: cold — deadlock diagnostics, rendered only when no thread is runnable.
            Status::Lock { lock, access } => blocked.push(format!(
                "t{tid} blocked acquiring lock #{lock} ({})",
                match access {
                    Access::Shared => "read",
                    Access::Exclusive => "write",
                }
            )),
            Status::Condvar { cv } => {
                cv_waiters += 1;
                // alloc: cold — deadlock diagnostics, rendered only when no thread is runnable.
                blocked.push(format!("t{tid} parked on condvar #{cv}"));
            }
            // alloc: cold — deadlock diagnostics, rendered only when no thread is runnable.
            Status::Join { child } => blocked.push(format!("t{tid} joining t{child}")),
            Status::Runnable | Status::Done => {}
        }
    }
    let kind = if cv_waiters > 0 && cv_waiters == blocked.len() {
        "lost wakeup: every undone thread is parked on a condvar with no \
         runnable notifier"
    } else {
        "deadlock: no thread is runnable"
    };
    // alloc: cold — deadlock diagnostics, rendered only when no thread is runnable.
    format!("{kind} — {}", blocked.join("; "))
}

/// Wraps a model-thread body: sets the thread-local context, waits for the
/// first grant, runs `f` catching panics, and retires the thread.
pub(crate) fn run_thread<T>(ctx: Ctx, f: impl FnOnce() -> T) -> Option<T> {
    install_quiet_hook();
    let previous = current_ctx();
    // alloc: startup — one context handle clone per spawned model thread.
    set_ctx(Some(ctx.clone()));
    {
        let st = ctx
            .exec
            .state
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        ctx.wait_granted(st);
    }
    let result = catch_unwind(AssertUnwindSafe(f));
    let out = match result {
        Ok(value) => Some(value),
        Err(payload) => {
            if !payload.is::<AbortUnwind>() {
                let mut st = ctx
                    .exec
                    .state
                    .lock()
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
                if st.failure.is_none() {
                    st.failure = Some(Failure::Panic {
                        tid: ctx.tid,
                        message: panic_message(payload.as_ref()),
                    });
                }
            }
            None
        }
    };
    ctx.finish();
    set_ctx(previous);
    out
}

/// Everything the DFS driver needs back from one execution.
pub(crate) struct RunOutcome {
    pub schedule: Vec<Choice>,
    pub trace: Vec<Tid>,
    pub failure: Option<Failure>,
}

/// Runs `f` once as model thread 0 under the given preset schedule prefix.
pub(crate) fn run_once(
    preset: &[usize],
    preemption_bound: usize,
    max_steps: usize,
    f: &(dyn Fn() + Sync),
) -> RunOutcome {
    let exec = Arc::new(Execution {
        state: Mutex::new(ExecState {
            slots: vec![Status::Runnable],
            granted: Some(0),
            schedule: Vec::new(),
            preset: preset.to_vec(),
            cursor: 0,
            preemptions: 0,
            preemption_bound,
            max_steps,
            locks: HashMap::new(),
            cv_queues: HashMap::new(),
            failure: None,
            trace: Vec::new(),
        }),
        wake: Condvar::new(),
    });
    std::thread::scope(|scope| {
        let exec = Arc::clone(&exec);
        scope.spawn(move || {
            run_thread(
                Ctx {
                    exec: Arc::clone(&exec),
                    tid: 0,
                },
                f,
            );
        });
    });
    // Scoped shim threads are joined inside thread 0; free-spawned shim
    // threads may still be retiring — wait until every slot is done.
    {
        let mut st = exec
            .state
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        while !st.all_done() && st.failure.is_none() {
            st = exec
                .wake
                .wait(st)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }
    let st = exec
        .state
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    RunOutcome {
        schedule: st.schedule.clone(),
        trace: st.trace.clone(),
        failure: st.failure.clone(),
    }
}

/// Spawn support for the shims: registers a child with the current
/// execution, returning the context to run it under.
pub(crate) fn child_ctx(parent: &Ctx) -> Ctx {
    Ctx {
        exec: Arc::clone(&parent.exec),
        tid: parent.register_child(),
    }
}
