//! Parameterised synthetic document generators.
//!
//! The paper's evaluation uses real corpora (hospital records for the medical
//! scenario, community/agenda documents for collaborative sharing, and
//! append-only streams for selective dissemination). Those corpora are not
//! redistributable, so this module generates synthetic documents with the same
//! structural profiles — what matters to the access-control engine and the
//! skip index is structure only: tag vocabulary, nesting depth, fan-out,
//! subtree sizes and text ratio. All generators are seeded and deterministic.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::event::Attribute;
use crate::tree::{Document, NodeId};

/// Common knobs shared by all generators.
#[derive(Debug, Clone)]
pub struct GeneratorConfig {
    /// RNG seed; the same seed always yields the same document.
    pub seed: u64,
    /// Approximate number of bytes of text per leaf text node.
    pub text_len: usize,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            seed: 0xB0DA_2005,
            text_len: 24,
        }
    }
}

fn rng_for(cfg: &GeneratorConfig, salt: u64) -> SmallRng {
    SmallRng::seed_from_u64(cfg.seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

const WORDS: &[&str] = &[
    "analysis",
    "protocol",
    "routine",
    "confidential",
    "urgent",
    "review",
    "pending",
    "archive",
    "summary",
    "detail",
    "internal",
    "external",
    "draft",
    "final",
    "standard",
    "extended",
];

fn random_text(rng: &mut SmallRng, approx_len: usize) -> String {
    let mut s = String::with_capacity(approx_len + 12);
    while s.len() < approx_len {
        if !s.is_empty() {
            s.push(' ');
        }
        s.push_str(WORDS[rng.gen_range(0..WORDS.len())]);
    }
    s
}

fn random_date(rng: &mut SmallRng) -> String {
    format!(
        "{:04}-{:02}-{:02}",
        rng.gen_range(1998..2006),
        rng.gen_range(1..13),
        rng.gen_range(1..29)
    )
}

fn person_name(rng: &mut SmallRng) -> String {
    const FIRST: &[&str] = &[
        "Luc", "Marie", "Paul", "Anne", "Jean", "Claire", "Hugo", "Lea",
    ];
    const LAST: &[&str] = &[
        "Durand", "Martin", "Bernard", "Petit", "Moreau", "Garcia", "Roux",
    ];
    format!(
        "{} {}",
        FIRST[rng.gen_range(0..FIRST.len())],
        LAST[rng.gen_range(0..LAST.len())]
    )
}

/// Profile of a hospital / medical-folder document.
///
/// ```text
/// hospital
///   patient*            (attribute id)
///     name, ssn, address
///     diagnosis
///       item*           (attribute sensitive="true|false")
///     acts
///       act*            (attribute type)
///         date, physician, report
///     prescriptions
///       prescription*   (drug, dosage)
/// ```
#[derive(Debug, Clone)]
pub struct HospitalProfile {
    /// Number of `patient` elements.
    pub patients: usize,
    /// Diagnosis items per patient.
    pub diagnosis_items: usize,
    /// Medical acts per patient.
    pub acts: usize,
    /// Prescriptions per patient.
    pub prescriptions: usize,
}

impl Default for HospitalProfile {
    fn default() -> Self {
        HospitalProfile {
            patients: 20,
            diagnosis_items: 3,
            acts: 4,
            prescriptions: 2,
        }
    }
}

/// Generates a hospital document.
pub fn hospital(profile: &HospitalProfile, cfg: &GeneratorConfig) -> Document {
    let mut rng = rng_for(cfg, 1);
    let mut doc = Document::new();
    let root = doc.create_root("hospital");
    for p in 0..profile.patients {
        let patient = doc.add_element_with(
            root,
            "patient",
            vec![Attribute::new("id", format!("P{p:05}"))],
        );
        let name = doc.add_element(patient, "name");
        let pname = person_name(&mut rng);
        doc.add_text(name, pname);
        let ssn = doc.add_element(patient, "ssn");
        doc.add_text(ssn, format!("{:09}", rng.gen_range(0..999_999_999u64)));
        let addr = doc.add_element(patient, "address");
        doc.add_text(addr, random_text(&mut rng, cfg.text_len));

        let diagnosis = doc.add_element(patient, "diagnosis");
        for _ in 0..profile.diagnosis_items {
            let item = doc.add_element_with(
                diagnosis,
                "item",
                vec![Attribute::new(
                    "sensitive",
                    if rng.gen_bool(0.3) { "true" } else { "false" },
                )],
            );
            doc.add_text(item, random_text(&mut rng, cfg.text_len));
        }

        let acts = doc.add_element(patient, "acts");
        for _ in 0..profile.acts {
            let act = doc.add_element_with(
                acts,
                "act",
                vec![Attribute::new(
                    "type",
                    ["consultation", "surgery", "radiology"][rng.gen_range(0..3)],
                )],
            );
            let date = doc.add_element(act, "date");
            doc.add_text(date, random_date(&mut rng));
            let phys = doc.add_element(act, "physician");
            doc.add_text(phys, person_name(&mut rng));
            let report = doc.add_element(act, "report");
            doc.add_text(report, random_text(&mut rng, cfg.text_len * 3));
        }

        let prescriptions = doc.add_element(patient, "prescriptions");
        for _ in 0..profile.prescriptions {
            let pr = doc.add_element(prescriptions, "prescription");
            let drug = doc.add_element(pr, "drug");
            doc.add_text(drug, random_text(&mut rng, 10));
            let dosage = doc.add_element(pr, "dosage");
            doc.add_text(dosage, format!("{} mg", rng.gen_range(5..500)));
        }
    }
    doc
}

/// Profile of a community / collaborative-work document (demo application 1).
///
/// ```text
/// community
///   member*              (attribute id)
///     name
///     contact { email, phone }
///     projects
///       project*         (attribute status)
///         title, budget
///         notes { note* }
///     agenda
///       meeting*         (attribute private)
///         date, subject, participants
/// ```
#[derive(Debug, Clone)]
pub struct CommunityProfile {
    /// Number of community members.
    pub members: usize,
    /// Projects per member.
    pub projects: usize,
    /// Notes per project.
    pub notes: usize,
    /// Meetings per member.
    pub meetings: usize,
}

impl Default for CommunityProfile {
    fn default() -> Self {
        CommunityProfile {
            members: 10,
            projects: 3,
            notes: 4,
            meetings: 5,
        }
    }
}

/// Generates a community document.
pub fn community(profile: &CommunityProfile, cfg: &GeneratorConfig) -> Document {
    let mut rng = rng_for(cfg, 2);
    let mut doc = Document::new();
    let root = doc.create_root("community");
    for m in 0..profile.members {
        let member = doc.add_element_with(
            root,
            "member",
            vec![Attribute::new("id", format!("M{m:03}"))],
        );
        let name = doc.add_element(member, "name");
        doc.add_text(name, person_name(&mut rng));
        let contact = doc.add_element(member, "contact");
        let email = doc.add_element(contact, "email");
        doc.add_text(email, format!("user{m}@example.org"));
        let phone = doc.add_element(contact, "phone");
        doc.add_text(
            phone,
            format!("+33 1 39 63 {:02} {:02}", m % 100, (m * 7) % 100),
        );

        let projects = doc.add_element(member, "projects");
        for _ in 0..profile.projects {
            let project = doc.add_element_with(
                projects,
                "project",
                vec![Attribute::new(
                    "status",
                    ["active", "draft", "closed"][rng.gen_range(0..3)],
                )],
            );
            let title = doc.add_element(project, "title");
            doc.add_text(title, random_text(&mut rng, 16));
            let budget = doc.add_element(project, "budget");
            doc.add_text(budget, format!("{}", rng.gen_range(1_000..100_000)));
            let notes = doc.add_element(project, "notes");
            for _ in 0..profile.notes {
                let note = doc.add_element(notes, "note");
                doc.add_text(note, random_text(&mut rng, cfg.text_len * 2));
            }
        }

        let agenda = doc.add_element(member, "agenda");
        for _ in 0..profile.meetings {
            let meeting = doc.add_element_with(
                agenda,
                "meeting",
                vec![Attribute::new(
                    "private",
                    if rng.gen_bool(0.4) { "true" } else { "false" },
                )],
            );
            let date = doc.add_element(meeting, "date");
            doc.add_text(date, random_date(&mut rng));
            let subject = doc.add_element(meeting, "subject");
            doc.add_text(subject, random_text(&mut rng, 20));
            let participants = doc.add_element(meeting, "participants");
            doc.add_text(participants, person_name(&mut rng));
        }
    }
    doc
}

/// Profile of a flat, wide catalog document (worst case for the skip index: a
/// shallow structure whose subtrees are all alike).
#[derive(Debug, Clone)]
pub struct CatalogProfile {
    /// Number of products.
    pub products: usize,
}

impl Default for CatalogProfile {
    fn default() -> Self {
        CatalogProfile { products: 100 }
    }
}

/// Generates a catalog document.
pub fn catalog(profile: &CatalogProfile, cfg: &GeneratorConfig) -> Document {
    let mut rng = rng_for(cfg, 3);
    let mut doc = Document::new();
    let root = doc.create_root("catalog");
    for i in 0..profile.products {
        let product = doc.add_element_with(
            root,
            "product",
            vec![Attribute::new("sku", format!("SKU{i:06}"))],
        );
        let name = doc.add_element(product, "name");
        doc.add_text(name, random_text(&mut rng, 12));
        let price = doc.add_element(product, "price");
        doc.add_text(
            price,
            format!("{}.{:02}", rng.gen_range(1..500), rng.gen_range(0..100)),
        );
        let desc = doc.add_element(product, "description");
        doc.add_text(desc, random_text(&mut rng, cfg.text_len * 2));
        let stock = doc.add_element(product, "stock");
        doc.add_text(stock, format!("{}", rng.gen_range(0..1000)));
    }
    doc
}

/// Profile of a dissemination stream (demo application 2): an append-only
/// sequence of items, each belonging to a channel and carrying a rating — the
/// natural targets of subscriber-specific access rules (e.g. parental control).
#[derive(Debug, Clone)]
pub struct StreamProfile {
    /// Number of items in the stream.
    pub items: usize,
    /// Size of the opaque payload (simulating multimedia content metadata).
    pub payload_len: usize,
    /// Channel names items are drawn from.
    pub channels: Vec<String>,
}

impl Default for StreamProfile {
    fn default() -> Self {
        StreamProfile {
            items: 50,
            payload_len: 256,
            channels: vec![
                "news".into(),
                "sports".into(),
                "finance".into(),
                "movies".into(),
            ],
        }
    }
}

/// Generates a dissemination stream document.
pub fn stream(profile: &StreamProfile, cfg: &GeneratorConfig) -> Document {
    let mut rng = rng_for(cfg, 4);
    let mut doc = Document::new();
    let root = doc.create_root("stream");
    for i in 0..profile.items {
        let channel = &profile.channels[rng.gen_range(0..profile.channels.len())];
        let rating = rng.gen_range(0..=18u32);
        let item = doc.add_element_with(
            root,
            "item",
            vec![
                Attribute::new("seq", format!("{i}")),
                Attribute::new("channel", channel.clone()),
            ],
        );
        let title = doc.add_element(item, "title");
        doc.add_text(title, random_text(&mut rng, 18));
        let rating_el = doc.add_element(item, "rating");
        doc.add_text(rating_el, format!("{rating}"));
        let summary = doc.add_element(item, "summary");
        doc.add_text(summary, random_text(&mut rng, cfg.text_len * 2));
        let payload = doc.add_element(item, "payload");
        doc.add_text(payload, random_text(&mut rng, profile.payload_len));
    }
    doc
}

/// Profile of a random recursive document with a bounded tag vocabulary, used
/// by property tests and by the depth sweeps of experiment E4.
#[derive(Debug, Clone)]
pub struct RandomProfile {
    /// Target number of element nodes (approximate).
    pub elements: usize,
    /// Maximum nesting depth.
    pub max_depth: usize,
    /// Maximum element children per node.
    pub max_fanout: usize,
    /// Tag vocabulary size (tags are `t0`, `t1`, ...).
    pub vocabulary: usize,
    /// Probability that a leaf carries a text node.
    pub text_probability: f64,
}

impl Default for RandomProfile {
    fn default() -> Self {
        RandomProfile {
            elements: 200,
            max_depth: 8,
            max_fanout: 5,
            vocabulary: 12,
            text_probability: 0.7,
        }
    }
}

/// Generates a random recursive document.
pub fn random(profile: &RandomProfile, cfg: &GeneratorConfig) -> Document {
    let mut rng = rng_for(cfg, 5);
    let mut doc = Document::new();
    let root = doc.create_root("root");
    let mut remaining = profile.elements.saturating_sub(1);
    // Frontier of (node, depth) still allowed to receive children.
    let mut frontier: Vec<(NodeId, usize)> = vec![(root, 1)];
    while remaining > 0 && !frontier.is_empty() {
        let idx = rng.gen_range(0..frontier.len());
        let (parent, depth) = frontier[idx];
        if depth >= profile.max_depth {
            frontier.swap_remove(idx);
            continue;
        }
        let fanout = rng.gen_range(1..=profile.max_fanout).min(remaining);
        for _ in 0..fanout {
            let tag = format!("t{}", rng.gen_range(0..profile.vocabulary));
            let child = doc.add_element(parent, &tag);
            if rng.gen_bool(profile.text_probability) {
                doc.add_text(child, random_text(&mut rng, cfg.text_len));
            }
            frontier.push((child, depth + 1));
            remaining -= 1;
            if remaining == 0 {
                break;
            }
        }
        frontier.swap_remove(idx);
    }
    doc
}

/// Generates a document forming a single deep chain `<c1><c2>...<cN>text</cN>...</c1>`,
/// used by the RAM-budget experiment (depth is the only driver of the token
/// stack size in the streaming evaluator).
pub fn deep_chain(depth: usize, cfg: &GeneratorConfig) -> Document {
    let mut rng = rng_for(cfg, 6);
    let mut doc = Document::new();
    let root = doc.create_root("c1");
    let mut cur = root;
    for level in 2..=depth.max(1) {
        cur = doc.add_element(cur, format!("c{level}"));
    }
    doc.add_text(cur, random_text(&mut rng, cfg.text_len));
    doc
}

/// Named generator selector used by the bench harness configuration files.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Corpus {
    /// Medical records (deep, regular, sensitive content).
    Hospital,
    /// Collaborative community document.
    Community,
    /// Flat product catalog.
    Catalog,
    /// Dissemination stream.
    Stream,
}

impl Corpus {
    /// Generates a document of roughly `target_elements` element nodes.
    pub fn generate(self, target_elements: usize, cfg: &GeneratorConfig) -> Document {
        match self {
            // Each patient subtree has ~(5 + items + 4*acts + 1 + 3*presc) elements.
            Corpus::Hospital => {
                let per_patient = 5 + 3 + 4 * 4 + 1 + 3 * 2 + 1;
                hospital(
                    &HospitalProfile {
                        patients: (target_elements / per_patient).max(1),
                        ..HospitalProfile::default()
                    },
                    cfg,
                )
            }
            Corpus::Community => {
                let per_member = 6 + 3 * (4 + 4) + 1 + 5 * 4;
                community(
                    &CommunityProfile {
                        members: (target_elements / per_member).max(1),
                        ..CommunityProfile::default()
                    },
                    cfg,
                )
            }
            Corpus::Catalog => catalog(
                &CatalogProfile {
                    products: (target_elements / 5).max(1),
                },
                cfg,
            ),
            Corpus::Stream => stream(
                &StreamProfile {
                    items: (target_elements / 5).max(1),
                    ..StreamProfile::default()
                },
                cfg,
            ),
        }
    }

    /// All corpora, for sweeps.
    pub fn all() -> [Corpus; 4] {
        [
            Corpus::Hospital,
            Corpus::Community,
            Corpus::Catalog,
            Corpus::Stream,
        ]
    }

    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            Corpus::Hospital => "hospital",
            Corpus::Community => "community",
            Corpus::Catalog => "catalog",
            Corpus::Stream => "stream",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::is_well_formed;
    use crate::stats::DocStats;

    #[test]
    fn hospital_document_is_well_formed_and_deterministic() {
        let cfg = GeneratorConfig::default();
        let d1 = hospital(&HospitalProfile::default(), &cfg);
        let d2 = hospital(&HospitalProfile::default(), &cfg);
        assert_eq!(d1.to_xml(), d2.to_xml());
        assert!(is_well_formed(&d1.to_events()));
        let stats = DocStats::from_events(&d1.to_events());
        assert!(stats.tag_histogram.contains_key("patient"));
        assert_eq!(stats.tag_histogram["patient"], 20);
        assert!(stats.max_depth >= 4);
    }

    #[test]
    fn different_seed_changes_content_not_structure() {
        let d1 = hospital(&HospitalProfile::default(), &GeneratorConfig::default());
        let d2 = hospital(
            &HospitalProfile::default(),
            &GeneratorConfig {
                seed: 42,
                ..GeneratorConfig::default()
            },
        );
        assert_ne!(d1.to_xml(), d2.to_xml());
        let s1 = DocStats::from_events(&d1.to_events());
        let s2 = DocStats::from_events(&d2.to_events());
        assert_eq!(s1.elements, s2.elements);
        assert_eq!(s1.max_depth, s2.max_depth);
    }

    #[test]
    fn community_catalog_stream_are_well_formed() {
        let cfg = GeneratorConfig::default();
        for events in [
            community(&CommunityProfile::default(), &cfg).to_events(),
            catalog(&CatalogProfile::default(), &cfg).to_events(),
            stream(&StreamProfile::default(), &cfg).to_events(),
        ] {
            assert!(is_well_formed(&events));
            assert!(!events.is_empty());
        }
    }

    #[test]
    fn random_respects_bounds() {
        let profile = RandomProfile {
            elements: 300,
            max_depth: 6,
            max_fanout: 4,
            vocabulary: 5,
            text_probability: 0.5,
        };
        let doc = random(&profile, &GeneratorConfig::default());
        let stats = DocStats::from_events(&doc.to_events());
        assert!(stats.max_depth <= 6);
        assert!(stats.max_fanout <= 4);
        assert!(stats.elements <= 300);
        assert!(stats.distinct_tags <= 6); // vocabulary + the root tag
    }

    #[test]
    fn deep_chain_has_requested_depth() {
        let doc = deep_chain(32, &GeneratorConfig::default());
        let stats = DocStats::from_events(&doc.to_events());
        assert_eq!(stats.max_depth, 32);
        assert_eq!(stats.elements, 32);
        let doc = deep_chain(1, &GeneratorConfig::default());
        assert_eq!(DocStats::from_events(&doc.to_events()).max_depth, 1);
    }

    #[test]
    fn corpus_generate_targets_size() {
        let cfg = GeneratorConfig::default();
        for corpus in Corpus::all() {
            let doc = corpus.generate(2_000, &cfg);
            let stats = DocStats::from_events(&doc.to_events());
            assert!(
                stats.elements > 500,
                "{} produced only {} elements",
                corpus.name(),
                stats.elements
            );
            assert!(is_well_formed(&doc.to_events()));
        }
    }

    #[test]
    fn stream_items_carry_channel_and_rating() {
        let doc = stream(&StreamProfile::default(), &GeneratorConfig::default());
        let root = doc.root().unwrap();
        let items: Vec<_> = doc.element_children(root).collect();
        assert_eq!(items.len(), 50);
        for item in items {
            let attrs = doc.attributes(item);
            assert!(attrs.iter().any(|a| a.name == "channel"));
            let kids: Vec<_> = doc
                .element_children(item)
                .filter_map(|c| doc.element_name(c).map(str::to_owned))
                .collect();
            assert!(kids.contains(&"rating".to_owned()));
            assert!(kids.contains(&"payload".to_owned()));
        }
    }
}
