//! Fast smoke test for tier-1 triage: round-trips one tiny document through
//! the whole pipeline — encrypt → skip-index → streaming evaluate inside the
//! engine → authorized view — and checks the view against the tree oracle.
//! If this fails, the break is in the core pipeline, not in a corpus
//! generator or an application scenario; it runs in milliseconds so future
//! PRs can localize tier-1 failures quickly.

use sdds_core::baseline::authorized_view_oracle;
use sdds_core::conflict::AccessPolicy;
use sdds_core::engine::{evaluate_secure_document, EngineConfig};
use sdds_core::evaluator::EvaluatorConfig;
use sdds_core::rule::{RuleSet, Subject};
use sdds_core::secdoc::SecureDocumentBuilder;
use sdds_core::skipindex::encode::EncoderConfig;
use sdds_crypto::SecretKey;
use sdds_xml::{writer, Document};

fn tiny_document() -> Document {
    Document::parse(
        r#"<folder>
             <admin><ssn>123456789</ssn></admin>
             <visit><diagnosis>ok</diagnosis><act>checkup</act></visit>
           </folder>"#,
    )
    .expect("tiny document parses")
}

fn nurse_rules() -> RuleSet {
    RuleSet::parse(
        "+, nurse, /folder\n\
         -, nurse, //ssn\n\
         -, nurse, //diagnosis",
    )
    .expect("rules parse")
}

#[test]
fn encrypted_round_trip_matches_oracle() {
    let doc = tiny_document();
    let rules = nurse_rules();
    let key = SecretKey::derive(b"smoke", "doc");

    let secure = SecureDocumentBuilder::new("smoke-doc", key.clone())
        .chunk_size(64)
        .encoder_config(EncoderConfig {
            min_index_bytes: 16,
            ..EncoderConfig::default()
        })
        .build(&doc);
    assert!(
        secure.chunk_count() > 1,
        "tiny doc should still span chunks"
    );
    assert!(
        secure.encode_stats.index_bytes > 0,
        "skip index must be embedded"
    );

    let config = EngineConfig::new(EvaluatorConfig::new(rules.clone(), "nurse"));
    let (view, stats) = evaluate_secure_document(&secure, &key, config).expect("engine runs");

    let oracle = authorized_view_oracle(
        &doc,
        &rules,
        &Subject::new("nurse"),
        None,
        &AccessPolicy::paper(),
    );
    let view_text = writer::to_string(&view);
    assert_eq!(view_text, writer::to_string(&oracle));

    // The denied subtrees must not leak into the authorized view, and the
    // permitted ones must survive.
    assert!(
        !view_text.contains("123456789"),
        "denied ssn leaked: {view_text}"
    );
    assert!(
        !view_text.contains("diagnosis"),
        "denied diagnosis leaked: {view_text}"
    );
    assert!(
        view_text.contains("checkup"),
        "permitted act missing: {view_text}"
    );

    // The engine must have decrypted something, and the skip index must have
    // let it skip at least part of the denied content.
    assert!(stats.ledger.bytes_decrypted > 0);
    assert!(
        stats.ledger.bytes_decrypted as u64 <= secure.header.plaintext_len,
        "decrypted more than the plaintext"
    );
}
