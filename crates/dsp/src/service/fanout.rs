//! Multi-subscriber dissemination without per-subscriber encryption.
//!
//! The paper's dissemination scenario (§3, application 2) broadcasts each
//! encrypted stream item over an unsecured channel; *selection happens in the
//! subscriber's SOE*, not at the publisher. The consequence — the reason the
//! architecture scales to many subscribers — is that the publisher encrypts
//! each item **once**, regardless of how many subscribers receive it: access
//! differentiation costs nothing at publication time because it is carried by
//! the per-subscriber protected rules, not by per-subscriber ciphertexts.
//!
//! [`FanOutDisseminator`] makes that property explicit and testable: it wraps
//! a [`DisseminationChannel`] (one encryption per published item) and hands
//! every subscriber mailbox an [`Arc`] of the same [`StreamItem`]. The
//! property test in `tests/fanout_properties.rs` pins both halves of the
//! claim: the fanned-out ciphertext is byte-identical to what M independent
//! unicast channels would have produced, and the encryption counter stays
//! equal to the number of published items no matter how many subscribers are
//! attached.

use sdds_sync::sync::Arc;
use std::collections::VecDeque;

use sdds_crypto::SecretKey;
use sdds_xml::{Document, NodeId};

use crate::dissemination::{DisseminationChannel, StreamItem};

/// Handle to one subscriber's mailbox.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubscriberId(usize);

/// One subscriber: a name (the subject whose rules its SOE enforces) and the
/// queue of items broadcast since it joined.
#[derive(Debug)]
struct Subscriber {
    subject: String,
    mailbox: VecDeque<Arc<StreamItem>>,
}

/// Publisher-side fan-out over one dissemination channel.
#[derive(Debug)]
pub struct FanOutDisseminator {
    channel: DisseminationChannel,
    subscribers: Vec<Subscriber>,
}

impl FanOutDisseminator {
    /// Creates a fan-out publisher for a channel named `name`, encrypting
    /// under `key`.
    pub fn new(name: impl Into<String>, key: SecretKey) -> Self {
        FanOutDisseminator {
            channel: DisseminationChannel::new(name, key),
            subscribers: Vec::new(),
        }
    }

    /// The underlying channel (name, key, published history).
    pub fn channel(&self) -> &DisseminationChannel {
        &self.channel
    }

    /// Attaches a subscriber; it receives items published from now on.
    pub fn subscribe(&mut self, subject: impl Into<String>) -> SubscriberId {
        self.subscribers.push(Subscriber {
            subject: subject.into(),
            mailbox: VecDeque::new(),
        });
        SubscriberId(self.subscribers.len() - 1)
    }

    /// Number of attached subscribers.
    pub fn subscriber_count(&self) -> usize {
        self.subscribers.len()
    }

    /// Subject of a subscriber.
    pub fn subject_of(&self, id: SubscriberId) -> &str {
        &self.subscribers[id.0].subject
    }

    /// Publishes one item (an element of `catalog`): encrypts it **once** and
    /// fans the shared ciphertext out to every subscriber mailbox — the
    /// channel history and every mailbox hold the same allocation.
    pub fn publish(&mut self, catalog: &Document, item_root: NodeId) -> Arc<StreamItem> {
        let item = self.channel.publish(catalog, item_root);
        for subscriber in &mut self.subscribers {
            subscriber.mailbox.push_back(Arc::clone(&item));
        }
        item
    }

    /// Publishes every element child of the root of `stream_doc`; returns the
    /// number of items published.
    pub fn publish_all(&mut self, stream_doc: &Document) -> usize {
        let Some(root) = stream_doc.root() else {
            return 0;
        };
        let items: Vec<NodeId> = stream_doc.element_children(root).collect();
        for item in &items {
            self.publish(stream_doc, *item);
        }
        items.len()
    }

    /// Drains the mailbox of one subscriber.
    pub fn drain(&mut self, id: SubscriberId) -> Vec<Arc<StreamItem>> {
        self.subscribers[id.0].mailbox.drain(..).collect()
    }

    /// Items currently queued for one subscriber.
    pub fn queued(&self, id: SubscriberId) -> usize {
        self.subscribers[id.0].mailbox.len()
    }

    /// Document encryptions performed so far. Structurally one per published
    /// item — the channel encrypts on publish and the mailboxes only ever
    /// hold [`Arc`] clones of the channel's history entries (the sharing is
    /// what the `Arc::ptr_eq` assertions in the tests pin).
    pub fn encryptions(&self) -> usize {
        self.channel.published().len()
    }

    /// Ciphertext bytes that crossed the broadcast medium. A broadcast
    /// channel carries each item once — this does **not** scale with the
    /// subscriber count, unlike M unicasts which would ship
    /// `broadcast_bytes() * M`.
    pub fn broadcast_bytes(&self) -> usize {
        self.channel.broadcast_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdds_xml::generator::{self, GeneratorConfig, StreamProfile};

    fn stream(items: usize) -> Document {
        generator::stream(
            &StreamProfile {
                items,
                ..StreamProfile::default()
            },
            &GeneratorConfig::default(),
        )
    }

    #[test]
    fn one_encryption_per_item_regardless_of_subscribers() {
        let key = SecretKey::derive(b"fanout", "c");
        let mut fanout = FanOutDisseminator::new("feed", key);
        let subscribers: Vec<SubscriberId> =
            (0..32).map(|i| fanout.subscribe(format!("s{i}"))).collect();
        assert_eq!(fanout.subscriber_count(), 32);
        let published = fanout.publish_all(&stream(5));
        assert_eq!(published, 5);
        assert_eq!(fanout.encryptions(), 5, "one encryption per item, not 5*32");
        for id in subscribers {
            assert_eq!(fanout.queued(id), 5);
        }
        assert!(fanout.broadcast_bytes() > 0);
    }

    #[test]
    fn every_mailbox_shares_the_same_ciphertext_allocation() {
        let key = SecretKey::derive(b"fanout", "c");
        let mut fanout = FanOutDisseminator::new("feed", key);
        let a = fanout.subscribe("alice");
        let b = fanout.subscribe("bob");
        assert_eq!(fanout.subject_of(a), "alice");
        fanout.publish_all(&stream(3));
        let from_a = fanout.drain(a);
        let from_b = fanout.drain(b);
        assert_eq!(fanout.queued(a), 0);
        for (x, y) in from_a.iter().zip(from_b.iter()) {
            // Not just equal bytes: literally the same allocation.
            assert!(Arc::ptr_eq(x, y));
        }
        // Three Arcs outstanding per item: the publisher history and the two
        // drained vectors all share one allocation.
        assert_eq!(Arc::strong_count(&from_a[0]), 3);
        assert!(Arc::ptr_eq(&from_a[0], &fanout.channel().published()[0]));
    }

    #[test]
    fn late_subscribers_receive_only_later_items() {
        let key = SecretKey::derive(b"fanout", "c");
        let mut fanout = FanOutDisseminator::new("feed", key);
        let early = fanout.subscribe("early");
        let doc = stream(4);
        let root = doc.root().unwrap();
        let items: Vec<NodeId> = doc.element_children(root).collect();
        fanout.publish(&doc, items[0]);
        fanout.publish(&doc, items[1]);
        let late = fanout.subscribe("late");
        fanout.publish(&doc, items[2]);
        fanout.publish(&doc, items[3]);
        assert_eq!(fanout.queued(early), 4);
        assert_eq!(fanout.queued(late), 2);
        let got: Vec<u64> = fanout.drain(late).iter().map(|i| i.sequence).collect();
        assert_eq!(got, vec![2, 3]);
        assert_eq!(fanout.channel().name(), "feed");
    }
}
