#![forbid(unsafe_code)]
//! `sdds-obs` — workspace telemetry with no dependencies beyond `sdds-sync`.
//!
//! Three pieces, composed bottom-up:
//!
//! 1. **Metrics** ([`Registry`], [`Counter`], [`Gauge`], [`Histogram`]) —
//!    recording is wait-free relaxed atomics behind cheap `Arc` handles;
//!    the registry produces one mergeable [`ObsSnapshot`] renderable as
//!    JSON or Prometheus-style text.
//! 2. **Spans** ([`Span`], the [`span!`] macro) — scoped timers on a
//!    pluggable [`Clock`] (real [`WallClock`] or deterministic
//!    [`ManualClock`]).
//! 3. **Flight recorder** ([`FlightRecorder`]) — bounded per-lane rings of
//!    recent spans, overwrite-oldest, zero allocation on the hot path,
//!    dumpable as JSON for post-mortems.
//!
//! Everything synchronizes through `sdds-sync`, so the same sources run on
//! the `sdds-check` shims under `--cfg sdds_check` and the model checker
//! can explore recorder interleavings.
//!
//! ```
//! use sdds_obs::{families, FlightRecorder, Registry};
//!
//! let registry = Registry::new();
//! let served = registry.counter(families::SERVE_REQUESTS);
//! let latency = registry.histogram(families::SERVE_LATENCY);
//! let recorder = FlightRecorder::new(2, 64);
//!
//! let span = sdds_obs::span!(recorder, 0, "fetch_chunk");
//! served.inc();
//! latency.record(span.finish());
//!
//! let snapshot = registry.snapshot();
//! assert_eq!(snapshot.counter(families::SERVE_REQUESTS), 1);
//! assert!(snapshot.to_json().contains("dsp.serve.requests"));
//! ```

pub mod families;
mod metrics;
mod recorder;

pub use metrics::{
    bucket_index, bucket_upper_bound, json_escape, Counter, Gauge, GaugeSnapshot, Histogram,
    HistogramSnapshot, MetricKey, ObsSnapshot, Registry, HISTOGRAM_BUCKETS,
};
pub use recorder::{Clock, FlightRecord, FlightRecorder, ManualClock, Span, WallClock};

/// Opens a scoped span on a [`FlightRecorder`]: `span!(recorder, "label")`
/// records on lane 0, `span!(recorder, lane, "label")` on a chosen lane.
/// The span closes (and writes its [`FlightRecord`]) on drop, or explicitly
/// via [`Span::finish`], which also returns the duration.
#[macro_export]
macro_rules! span {
    ($recorder:expr, $label:expr) => {
        $recorder.span(0, $label)
    };
    ($recorder:expr, $lane:expr, $label:expr) => {
        $recorder.span($lane, $label)
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn prop_cases() -> u64 {
        std::env::var("SDDS_PROP_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(32)
    }

    /// Deterministic xorshift64* generator for seeded property tests.
    struct Rng(u64);

    impl Rng {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x.wrapping_mul(0x2545_f491_4f6c_dd1d)
        }
    }

    #[test]
    fn counters_add_and_reset() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        let shared = c.clone();
        shared.inc();
        assert_eq!(c.get(), 43, "clones share the cell");
        c.reset();
        assert_eq!(shared.get(), 0);
    }

    #[test]
    fn gauge_tracks_level_and_peak() {
        let g = Gauge::new();
        g.set(3);
        g.set(17);
        g.set(5);
        assert_eq!(g.get(), 5);
        assert_eq!(g.peak(), 17);
        g.reset();
        assert_eq!((g.get(), g.peak()), (0, 0));
    }

    #[test]
    fn histogram_bucket_boundaries_are_powers_of_two() {
        // Bucket 0 holds {0, 1}; bucket i >= 1 holds [2^i, 2^(i+1)).
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 1);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(7), 2);
        assert_eq!(bucket_index(8), 3);
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
        for i in 1..HISTOGRAM_BUCKETS - 1 {
            let upper = bucket_upper_bound(i);
            assert_eq!(bucket_index(upper), i, "upper bound stays in bucket {i}");
            assert_eq!(
                bucket_index(upper + 1),
                i + 1,
                "next value leaves bucket {i}"
            );
        }
    }

    #[test]
    fn histogram_quantiles_bound_exact_values_on_seeded_samples() {
        let cases = prop_cases();
        for case in 0..cases {
            let mut rng = Rng(0x5eed_0b50 ^ (case + 1));
            let h = Histogram::new();
            let mut samples: Vec<u64> = (0..200)
                .map(|_| {
                    // Mix magnitudes: some sub-microsecond, some multi-ms.
                    let magnitude = rng.next() % 24;
                    rng.next() % (1u64 << (magnitude + 1))
                })
                .collect();
            for &s in &samples {
                h.record(s);
            }
            samples.sort_unstable();
            let snap = h.snapshot();
            assert_eq!(snap.count, samples.len() as u64);
            assert_eq!(snap.sum, samples.iter().sum::<u64>());
            assert_eq!(snap.max, *samples.last().unwrap());
            for (q, p) in [(0.50, snap.p50()), (0.90, snap.p90()), (0.99, snap.p99())] {
                let rank = ((q * samples.len() as f64).ceil() as usize).max(1);
                let exact = samples[rank - 1];
                assert!(
                    p >= exact && p <= exact.max(1) * 2,
                    "case {case} q {q}: estimate {p} not within [{exact}, 2*{exact}]"
                );
            }
        }
    }

    #[test]
    fn histogram_snapshot_merge_is_associative_and_commutative() {
        let cases = prop_cases();
        for case in 0..cases {
            let mut rng = Rng(0xfeed ^ (case + 7));
            let parts: Vec<HistogramSnapshot> = (0..3)
                .map(|_| {
                    let h = Histogram::new();
                    for _ in 0..(rng.next() % 50) {
                        h.record(rng.next() % 100_000);
                    }
                    h.snapshot()
                })
                .collect();
            // (a + b) + c == a + (b + c) == (c + a) + b
            let mut ab_c = parts[0].clone();
            ab_c.merge(&parts[1]);
            ab_c.merge(&parts[2]);
            let mut bc = parts[1].clone();
            bc.merge(&parts[2]);
            let mut a_bc = parts[0].clone();
            a_bc.merge(&bc);
            let mut ca_b = parts[2].clone();
            ca_b.merge(&parts[0]);
            ca_b.merge(&parts[1]);
            assert_eq!(ab_c, a_bc, "case {case}: merge is not associative");
            assert_eq!(ab_c, ca_b, "case {case}: merge is not commutative");
        }
    }

    #[test]
    fn obs_snapshot_merge_is_associative() {
        let make = |base: u64| {
            let r = Registry::new();
            r.counter(families::SERVE_REQUESTS).add(base);
            r.counter_with(families::ERRORS, Some(families::ERROR_NOT_FOUND))
                .add(base / 2);
            r.gauge(families::SCHED_QUEUE_DEPTH).set(base);
            let h = r.histogram(families::SERVE_LATENCY);
            h.record(base);
            h.record(base * 3);
            r.snapshot()
        };
        let (a, b, c) = (make(4), make(9), make(30));
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(left.counters, right.counters);
        assert_eq!(left.gauges, right.gauges);
        assert_eq!(left.histograms, right.histograms);
        assert_eq!(left.counter(families::SERVE_REQUESTS), 43);
        assert_eq!(
            left.counter_with(families::ERRORS, families::ERROR_NOT_FOUND),
            2 + 4 + 15
        );
        assert_eq!(left.gauge(families::SCHED_QUEUE_DEPTH).unwrap().peak, 30);
        assert_eq!(left.histogram(families::SERVE_LATENCY).unwrap().count, 6);
    }

    #[test]
    fn registry_registration_is_idempotent() {
        let r = Registry::new();
        let a = r.counter(families::SERVE_REQUESTS);
        let b = r.counter(families::SERVE_REQUESTS);
        a.inc();
        b.inc();
        assert_eq!(r.snapshot().counter(families::SERVE_REQUESTS), 2);
        let labelled = r.counter_with(families::SERVE_REQUESTS, Some("shard=1"));
        labelled.inc();
        let snap = r.snapshot();
        assert_eq!(snap.counter(families::SERVE_REQUESTS), 3);
        assert_eq!(snap.counter_with(families::SERVE_REQUESTS, "shard=1"), 1);
    }

    #[test]
    fn snapshot_renders_json_and_prometheus() {
        let r = Registry::new();
        r.counter_with(families::SERVE_REQUESTS, Some("shard=0"))
            .add(5);
        r.gauge(families::SCHED_QUEUE_DEPTH).set(2);
        r.histogram(families::SERVE_LATENCY).record(1000);
        let snap = r.snapshot();

        let json = snap.to_json();
        assert!(json.contains("\"schema\": \"sdds-obs-v1\""), "{json}");
        assert!(
            json.contains("\"dsp.serve.requests{shard=0}\": 5"),
            "{json}"
        );
        assert!(json.contains("\"dsp.serve.latency_ns\""), "{json}");
        assert!(json.contains("\"peak\": 2"), "{json}");

        let prom = snap.to_prometheus();
        assert!(prom.contains("dsp_serve_requests{shard=\"0\"} 5"), "{prom}");
        assert!(prom.contains("sched_queue_depth 2"), "{prom}");
        assert!(
            prom.contains("dsp_serve_latency_ns{quantile=\"0.5\"}"),
            "{prom}"
        );
        assert!(prom.contains("dsp_serve_latency_ns_count 1"), "{prom}");
    }

    #[test]
    fn flight_recorder_overwrites_oldest_and_keeps_order() {
        let clock = Arc::new(ManualClock::new());
        let recorder = FlightRecorder::with_clock(1, 4, clock.clone());
        for i in 0..10u64 {
            clock.set(i * 100);
            recorder.record(0, "step", i * 100, 10);
        }
        let records = recorder.records();
        assert_eq!(records.len(), 4, "ring keeps exactly its capacity");
        let seqs: Vec<u64> = records.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9], "oldest records were overwritten");
        assert_eq!(recorder.recorded(), 10);
    }

    #[test]
    fn spans_record_manual_clock_durations() {
        let clock = Arc::new(ManualClock::new());
        let recorder = FlightRecorder::with_clock(2, 8, clock.clone());
        {
            let span = span!(recorder, 1, "fetch_chunk");
            clock.advance(250);
            assert_eq!(span.finish(), 250);
        }
        {
            let _span = span!(recorder, "drop_span");
            clock.advance(99);
            // Recorded on drop.
        }
        let records = recorder.records();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].label, "fetch_chunk");
        assert_eq!(records[0].lane, 1);
        assert_eq!(records[0].duration_nanos, 250);
        assert_eq!(records[1].label, "drop_span");
        assert_eq!(records[1].duration_nanos, 99);
        let dump = recorder.dump_json();
        assert!(
            dump.contains("\"schema\": \"sdds-obs-flight-v1\""),
            "{dump}"
        );
        assert!(dump.contains("\"label\": \"fetch_chunk\""), "{dump}");
    }

    #[test]
    fn recorder_lane_indices_wrap_into_range() {
        let recorder = FlightRecorder::new(3, 4);
        recorder.record(7, "wrapped", 0, 1);
        let records = recorder.records();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].lane, 1, "lane 7 wraps to 7 % 3");
    }
}
