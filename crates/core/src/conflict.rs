//! Conflict resolution (§2.2).
//!
//! "Due to this propagation mechanism and to the multiplicity of rules for a
//! same user, a conflict resolution principle is required. Conflicts are
//! resolved using two policies: 1) Denial-Takes-Precedence [...] and 2)
//! Most-Specific-Object-Takes-Precedence."
//!
//! The decision algebra below implements exactly that: among the rules that
//! apply *directly* to a node, a prohibition wins over a permission; when no
//! rule applies directly, the decision propagated from the closest ancestor
//! with a direct rule applies; when nothing applies at all, the closed-world
//! default of the policy applies.

use crate::rule::{RuleId, Sign};

/// Authorization decision for a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Decision {
    /// The node (tag, attributes, direct text) may be delivered.
    Permit,
    /// The node must not be delivered (descendants may still be, under a more
    /// specific positive rule; their ancestors then appear as bare structural
    /// scaffolding).
    Deny,
}

impl Decision {
    /// True for [`Decision::Permit`].
    pub fn is_permit(self) -> bool {
        matches!(self, Decision::Permit)
    }
}

/// Global policy knobs of the access-control head.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessPolicy {
    /// Decision applied when no rule (direct or propagated) concerns a node.
    /// The paper's model is closed by default (`Deny`).
    pub default_decision: Decision,
    /// If `true` (the paper's semantics), a prohibition that applies directly
    /// to a node wins over a permission that applies directly to the same
    /// node. The `false` variant (permission takes precedence) is provided for
    /// the ablation of experiment E1 only.
    pub denial_takes_precedence: bool,
}

impl Default for AccessPolicy {
    fn default() -> Self {
        AccessPolicy {
            default_decision: Decision::Deny,
            denial_takes_precedence: true,
        }
    }
}

impl AccessPolicy {
    /// The paper's policy: closed world, denial takes precedence.
    pub fn paper() -> Self {
        AccessPolicy::default()
    }

    /// An open-by-default policy (used by the dissemination application where
    /// everything is public except what negative rules carve out).
    pub fn open() -> Self {
        AccessPolicy {
            default_decision: Decision::Permit,
            ..AccessPolicy::default()
        }
    }
}

/// A rule that applies *directly* to a node (its navigational final state was
/// reached on that node and all its predicates hold).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DirectRule {
    /// The rule.
    pub rule: RuleId,
    /// Its sign.
    pub sign: Sign,
}

/// Resolves the decision of a node given the rules applying directly to it and
/// the decision inherited from its closest ancestor carrying a direct rule
/// (`None` when no ancestor carries one).
pub fn resolve(
    policy: &AccessPolicy,
    direct: &[DirectRule],
    inherited: Option<Decision>,
) -> Decision {
    let has_deny = direct.iter().any(|d| d.sign == Sign::Deny);
    let has_permit = direct.iter().any(|d| d.sign == Sign::Permit);
    match (has_deny, has_permit) {
        (true, true) => {
            // Conflict at equal specificity.
            if policy.denial_takes_precedence {
                Decision::Deny
            } else {
                Decision::Permit
            }
        }
        (true, false) => Decision::Deny,
        (false, true) => Decision::Permit,
        (false, false) => inherited.unwrap_or(policy.default_decision),
    }
}

/// A stack of decisions mirroring the element nesting — the paper's *sign
/// stack*: "propagation of rules as well as conflicts are managed with a sign
/// stack which keeps on the top the current sign that is propagated if no
/// other rule applies" (§2.3).
#[derive(Debug, Clone, Default)]
pub struct SignStack {
    stack: Vec<Decision>,
}

impl SignStack {
    /// Creates an empty stack.
    pub fn new() -> Self {
        SignStack::default()
    }

    /// Decision currently propagated (top of stack), if any element is open.
    pub fn current(&self) -> Option<Decision> {
        self.stack.last().copied()
    }

    /// Pushes the decision of a newly opened element, computed from its direct
    /// rules and the propagated decision, and returns it.
    pub fn push(&mut self, policy: &AccessPolicy, direct: &[DirectRule]) -> Decision {
        let decision = resolve(policy, direct, self.current());
        self.stack.push(decision);
        decision
    }

    /// Pops the decision of a closing element.
    pub fn pop(&mut self) -> Option<Decision> {
        self.stack.pop()
    }

    /// Current depth of the stack.
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    /// Bytes of secure working memory used by the stack (one byte per level in
    /// the card implementation).
    pub fn ram_bytes(&self) -> usize {
        self.stack.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn permit(id: u32) -> DirectRule {
        DirectRule {
            rule: RuleId(id),
            sign: Sign::Permit,
        }
    }

    fn deny(id: u32) -> DirectRule {
        DirectRule {
            rule: RuleId(id),
            sign: Sign::Deny,
        }
    }

    #[test]
    fn default_policy_is_closed_world_denial_precedence() {
        let p = AccessPolicy::paper();
        assert_eq!(p.default_decision, Decision::Deny);
        assert!(p.denial_takes_precedence);
        assert_eq!(AccessPolicy::open().default_decision, Decision::Permit);
        assert!(!Decision::Deny.is_permit());
        assert!(Decision::Permit.is_permit());
    }

    #[test]
    fn denial_takes_precedence_among_direct_rules() {
        let p = AccessPolicy::paper();
        assert_eq!(resolve(&p, &[permit(0), deny(1)], None), Decision::Deny);
        assert_eq!(
            resolve(&p, &[deny(1), permit(0)], Some(Decision::Permit)),
            Decision::Deny
        );
        let lenient = AccessPolicy {
            denial_takes_precedence: false,
            ..AccessPolicy::paper()
        };
        assert_eq!(
            resolve(&lenient, &[permit(0), deny(1)], None),
            Decision::Permit
        );
    }

    #[test]
    fn most_specific_object_takes_precedence() {
        let p = AccessPolicy::paper();
        // A direct permission overrides an inherited prohibition.
        assert_eq!(
            resolve(&p, &[permit(0)], Some(Decision::Deny)),
            Decision::Permit
        );
        // A direct prohibition overrides an inherited permission.
        assert_eq!(
            resolve(&p, &[deny(0)], Some(Decision::Permit)),
            Decision::Deny
        );
        // No direct rule: the propagated decision applies.
        assert_eq!(resolve(&p, &[], Some(Decision::Permit)), Decision::Permit);
        assert_eq!(resolve(&p, &[], Some(Decision::Deny)), Decision::Deny);
        // Nothing applies: the closed-world default applies.
        assert_eq!(resolve(&p, &[], None), Decision::Deny);
        assert_eq!(resolve(&AccessPolicy::open(), &[], None), Decision::Permit);
    }

    #[test]
    fn sign_stack_propagates_and_backtracks() {
        let p = AccessPolicy::paper();
        let mut stack = SignStack::new();
        assert_eq!(stack.current(), None);
        // <root> with a direct permit
        assert_eq!(stack.push(&p, &[permit(0)]), Decision::Permit);
        // <child> with no direct rule inherits permit
        assert_eq!(stack.push(&p, &[]), Decision::Permit);
        // <grandchild> with a direct deny
        assert_eq!(stack.push(&p, &[deny(1)]), Decision::Deny);
        // <greatgrandchild> inherits the deny
        assert_eq!(stack.push(&p, &[]), Decision::Deny);
        assert_eq!(stack.depth(), 4);
        assert_eq!(stack.ram_bytes(), 4);
        assert_eq!(stack.pop(), Some(Decision::Deny));
        assert_eq!(stack.pop(), Some(Decision::Deny));
        // Back under <child>, the propagated decision is permit again.
        assert_eq!(stack.current(), Some(Decision::Permit));
        assert_eq!(stack.push(&p, &[]), Decision::Permit);
        stack.pop();
        stack.pop();
        stack.pop();
        assert_eq!(stack.pop(), None);
    }
}
