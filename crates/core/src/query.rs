//! User queries.
//!
//! Queries are expressed in the same XP{[],*,//} fragment as the access rules
//! (§3: "both access control rules and queries are expressed in XPath"). The
//! result of a query is the set of subtrees rooted at the matching nodes,
//! restricted to their authorized part.

use sdds_xpath::Path;

use crate::automaton::{compile, CompiledPath};
use crate::error::CoreError;

/// A parsed and compiled user query.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// The parsed path.
    pub path: Path,
    compiled: CompiledPath,
}

impl Query {
    /// Parses a query expression.
    pub fn parse(expression: &str) -> Result<Self, CoreError> {
        let path = sdds_xpath::parse(expression)?;
        let compiled = compile(&path)?;
        Ok(Query { path, compiled })
    }

    /// Builds a query from an already parsed path.
    pub fn from_path(path: Path) -> Result<Self, CoreError> {
        let compiled = compile(&path)?;
        Ok(Query { path, compiled })
    }

    /// The compiled automaton, consumed by the engine.
    pub fn compiled(&self) -> &CompiledPath {
        &self.compiled
    }

    /// Textual form of the query.
    pub fn to_expression(&self) -> String {
        // alloc: startup — the query expression is serialised once at provisioning.
        self.path.to_string()
    }

    /// Serialised length of the query as shipped to the card (used by the
    /// channel accounting of the PUT_QUERY command).
    pub fn wire_len(&self) -> usize {
        self.to_expression().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_reformat() {
        let q = Query::parse("//patient[@id = \"P1\"]//act").unwrap();
        assert_eq!(q.compiled().len(), 2);
        assert!(q.to_expression().contains("patient"));
        assert!(q.wire_len() > 10);
        let q2 = Query::from_path(q.path.clone()).unwrap();
        assert_eq!(q, q2);
    }

    #[test]
    fn invalid_queries_are_rejected() {
        assert!(Query::parse("//a[").is_err());
        assert!(Query::parse("").is_err());
        assert!(Query::parse("//a[b[c]]").is_err()); // outside the streaming fragment
    }
}
