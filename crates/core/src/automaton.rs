//! Compilation of rule objects and queries into non-deterministic automata.
//!
//! "Each access rule is represented by a non-deterministic automaton [...]
//! made up of a navigational path (in white in the figure) representing the
//! XPath without its predicate and predicate paths (in gray in the figure)
//! appended to it." (§2.3, Figure 2)
//!
//! [`CompiledPath`] is that automaton in a form convenient for streaming
//! execution: one navigational state per step, with the predicates of each
//! step compiled either to *immediate* checks (attribute tests, decidable on
//! the `open` event) or to *deferred* predicate paths that spawn pending
//! instances at run time (see [`crate::runtime`]).

use sdds_xpath::{Axis, Comparison, NodeTest, Path, Predicate, PredicateTarget};

use crate::error::CoreError;

/// One step of a compiled predicate path (no nested predicates allowed).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RelStep {
    /// Axis from the previous step (or from the context node for the first).
    pub axis: Axis,
    /// Node test.
    pub test: NodeTest,
}

/// A value condition attached to the end of a predicate.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ValueCondition {
    /// Comparison operator.
    pub op: Comparison,
    /// Literal compared against.
    pub literal: String,
}

impl ValueCondition {
    /// Applies the condition to a candidate value.
    pub fn holds(&self, value: &str) -> bool {
        self.op.compare(value, &self.literal)
    }
}

/// A predicate compiled for streaming evaluation.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum CompiledPredicate {
    /// `[@name]` / `[@name = "v"]` — decidable immediately on the `open` event
    /// of the context element.
    Attribute {
        /// Attribute name.
        name: String,
        /// Optional value condition.
        condition: Option<ValueCondition>,
    },
    /// `[.]` / `[. = "v"]` — requires observing the direct text of the context
    /// element; resolves at the latest when the context element closes.
    SelfText {
        /// Optional value condition (`None` means "has non-empty direct text").
        condition: Option<ValueCondition>,
    },
    /// `[a/b]`, `[.//c = "v"]`, `[a/@t = "v"]` — a relative path anchored at
    /// the context element, optionally ending on an attribute, optionally
    /// constrained by a value condition. Spawns a pending instance at run time.
    RelPath {
        /// Steps of the relative path.
        steps: Vec<RelStep>,
        /// If set, the predicate targets this attribute of the final element.
        attribute: Option<String>,
        /// Optional value condition on the final element text / attribute.
        condition: Option<ValueCondition>,
    },
}

impl CompiledPredicate {
    /// True if the predicate can be decided on the `open` event alone.
    pub fn is_immediate(&self) -> bool {
        matches!(self, CompiledPredicate::Attribute { .. })
    }
}

/// One navigational step of a compiled path.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledStep {
    /// Axis from the previous step.
    pub axis: Axis,
    /// Node test.
    pub test: NodeTest,
    /// Immediate (attribute) predicates of the step.
    pub immediate: Vec<CompiledPredicate>,
    /// Deferred predicates of the step (self-text and relative paths).
    pub deferred: Vec<CompiledPredicate>,
}

/// A compiled rule object or query: the navigational automaton plus, for each
/// step, its predicate automata.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledPath {
    /// The source expression (kept for the skip-index satisfiability analysis
    /// and for diagnostics).
    pub source: Path,
    /// Navigational steps.
    pub steps: Vec<CompiledStep>,
}

impl CompiledPath {
    /// Number of navigational states beyond the initial one; the automaton of
    /// Figure 2 has `len() + Σ predicate-path lengths` states in total.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// True for an empty path (never produced by [`compile`]).
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Total number of automaton states (navigational + predicate), reported by
    /// the engine statistics and charged to the RAM accounting.
    pub fn state_count(&self) -> usize {
        1 + self.steps.len()
            + self
                .steps
                .iter()
                .flat_map(|s| s.deferred.iter())
                .map(|p| match p {
                    CompiledPredicate::RelPath { steps, .. } => steps.len(),
                    _ => 1,
                })
                .sum::<usize>()
    }

    /// True if any step carries a deferred predicate (the rule can become
    /// *pending* at run time).
    pub fn has_deferred_predicates(&self) -> bool {
        self.steps.iter().any(|s| !s.deferred.is_empty())
    }
}

fn compile_condition(condition: &Option<(Comparison, String)>) -> Option<ValueCondition> {
    condition.as_ref().map(|(op, literal)| ValueCondition {
        op: *op,
        // alloc: startup — rules and queries compile once at provisioning, never per event.
        literal: literal.clone(),
    })
}

fn compile_rel_path(path: &Path, source: &Path) -> Result<Vec<RelStep>, CoreError> {
    // alloc: startup — rules and queries compile once at provisioning, never per event.
    let mut steps = Vec::with_capacity(path.steps.len());
    for step in &path.steps {
        if !step.predicates.is_empty() {
            return Err(CoreError::UnsupportedRule {
                // alloc: startup — rules and queries compile once at provisioning, never per event.
                expression: source.to_string(),
                reason: "predicates nested inside a predicate path are not supported by the \
                         streaming automata (the XP{[],*,//} fragment of the paper appends \
                         predicate paths to navigational states only)"
                    .into(),
            });
        }
        steps.push(RelStep {
            axis: step.axis,
            // alloc: startup — rules and queries compile once at provisioning, never per event.
            test: step.test.clone(),
        });
    }
    Ok(steps)
}

fn compile_predicate(pred: &Predicate, source: &Path) -> Result<CompiledPredicate, CoreError> {
    Ok(match &pred.target {
        PredicateTarget::Attribute(name) => CompiledPredicate::Attribute {
            // alloc: startup — rules and queries compile once at provisioning, never per event.
            name: name.clone(),
            condition: compile_condition(&pred.condition),
        },
        PredicateTarget::SelfText => CompiledPredicate::SelfText {
            condition: compile_condition(&pred.condition),
        },
        PredicateTarget::Path(rel) => CompiledPredicate::RelPath {
            steps: compile_rel_path(rel, source)?,
            attribute: None,
            condition: compile_condition(&pred.condition),
        },
        PredicateTarget::PathAttribute(rel, attr) => CompiledPredicate::RelPath {
            steps: compile_rel_path(rel, source)?,
            // alloc: startup — rules and queries compile once at provisioning, never per event.
            attribute: Some(attr.clone()),
            condition: compile_condition(&pred.condition),
        },
    })
}

/// Compiles a parsed path into its streaming automaton.
pub fn compile(path: &Path) -> Result<CompiledPath, CoreError> {
    if path.is_empty() {
        return Err(CoreError::UnsupportedRule {
            // alloc: startup — rules and queries compile once at provisioning, never per event.
            expression: path.to_string(),
            reason: "empty path".into(),
        });
    }
    // alloc: startup — rules and queries compile once at provisioning, never per event.
    let mut steps = Vec::with_capacity(path.steps.len());
    for step in &path.steps {
        let mut immediate = Vec::new();
        let mut deferred = Vec::new();
        for pred in &step.predicates {
            let compiled = compile_predicate(pred, path)?;
            if compiled.is_immediate() {
                immediate.push(compiled);
            } else {
                deferred.push(compiled);
            }
        }
        steps.push(CompiledStep {
            axis: step.axis,
            // alloc: startup — rules and queries compile once at provisioning, never per event.
            test: step.test.clone(),
            immediate,
            deferred,
        });
    }
    Ok(CompiledPath {
        // alloc: startup — rules and queries compile once at provisioning, never per event.
        source: path.clone(),
        steps,
    })
}

/// Compiles an expression given as text.
pub fn compile_str(expression: &str) -> Result<CompiledPath, CoreError> {
    compile(&sdds_xpath::parse(expression)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compiles_figure2_rule() {
        // Figure 2: R: ⊕, //b[c]/d — navigational path //b/d with predicate
        // path c appended to the b state.
        let c = compile_str("//b[c]/d").unwrap();
        assert_eq!(c.len(), 2);
        assert_eq!(c.steps[0].axis, Axis::Descendant);
        assert_eq!(c.steps[0].deferred.len(), 1);
        assert!(c.steps[0].immediate.is_empty());
        assert_eq!(c.steps[1].axis, Axis::Child);
        assert!(c.has_deferred_predicates());
        // 1 initial + 2 navigational + 1 predicate state, as in the figure
        // (states 1..5 of Figure 2 = initial + b + c + d counted differently;
        // what matters is that the count covers every step and predicate).
        assert_eq!(c.state_count(), 4);
    }

    #[test]
    fn attribute_predicates_are_immediate() {
        let c = compile_str("//item[@sensitive = \"true\"]").unwrap();
        assert_eq!(c.steps[0].immediate.len(), 1);
        assert!(c.steps[0].deferred.is_empty());
        assert!(!c.has_deferred_predicates());
        match &c.steps[0].immediate[0] {
            CompiledPredicate::Attribute { name, condition } => {
                assert_eq!(name, "sensitive");
                assert!(condition.as_ref().unwrap().holds("true"));
                assert!(!condition.as_ref().unwrap().holds("false"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn value_and_attribute_path_predicates_are_deferred() {
        let c = compile_str("//patient[acts/act/@type = \"surgery\"][name = \"Alice\"]/diagnosis")
            .unwrap();
        assert_eq!(c.steps[0].deferred.len(), 2);
        match &c.steps[0].deferred[0] {
            CompiledPredicate::RelPath {
                steps,
                attribute,
                condition,
            } => {
                assert_eq!(steps.len(), 2);
                assert_eq!(attribute.as_deref(), Some("type"));
                assert!(condition.as_ref().unwrap().holds("surgery"));
            }
            other => panic!("unexpected {other:?}"),
        }
        match &c.steps[0].deferred[1] {
            CompiledPredicate::RelPath {
                steps, attribute, ..
            } => {
                assert_eq!(steps.len(), 1);
                assert!(attribute.is_none());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn self_text_predicate_is_deferred() {
        let c = compile_str("//rating[. <= 12]").unwrap();
        assert_eq!(c.steps[0].deferred.len(), 1);
        match &c.steps[0].deferred[0] {
            CompiledPredicate::SelfText { condition } => {
                assert!(condition.as_ref().unwrap().holds("7"));
                assert!(!condition.as_ref().unwrap().holds("16"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn nested_predicates_are_rejected_with_a_clear_error() {
        let err = compile_str("//a[b[c]]/d").unwrap_err();
        match err {
            CoreError::UnsupportedRule { reason, .. } => {
                assert!(reason.contains("nested"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn wildcard_and_descendant_steps_compile() {
        let c = compile_str("/a/*//d").unwrap();
        assert_eq!(c.len(), 3);
        assert_eq!(c.steps[1].test, NodeTest::Wildcard);
        assert_eq!(c.steps[2].axis, Axis::Descendant);
        assert!(!c.is_empty());
        assert_eq!(c.state_count(), 4);
    }

    #[test]
    fn existence_only_relative_predicate() {
        let c = compile_str("//project[.//note]").unwrap();
        match &c.steps[0].deferred[0] {
            CompiledPredicate::RelPath {
                steps,
                attribute,
                condition,
            } => {
                assert_eq!(steps[0].axis, Axis::Descendant);
                assert!(attribute.is_none());
                assert!(condition.is_none());
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
