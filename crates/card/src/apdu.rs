//! ISO 7816-4 style Application Protocol Data Units.
//!
//! The terminal proxy and the card exchange APDUs (footnote 1 of the paper:
//! "Application Protocol Data Unit: Communication protocol between the
//! terminal and the smart card"). The encoding below follows the short-APDU
//! format (Lc/Le ≤ 255 bytes), which caps each exchange and therefore drives
//! the number of round-trips counted by the channel model.

use crate::error::CardError;

/// Class byte used by the SDDS applet.
pub const CLA_SDDS: u8 = 0x80;

/// Instruction bytes understood by the SDDS access-control applet.
pub mod ins {
    /// Select a document / open an evaluation session.
    pub const OPEN_SESSION: u8 = 0x20;
    /// Install or refresh access-control rules (encrypted payload).
    pub const PUT_RULES: u8 = 0x22;
    /// Install a decryption key delivered through the secure channel.
    pub const PUT_KEY: u8 = 0x24;
    /// Push the next encrypted document fragment to the card.
    pub const PUSH_CHUNK: u8 = 0x26;
    /// Retrieve the next authorized output fragment from the card.
    pub const GET_OUTPUT: u8 = 0x28;
    /// Ask the card which chunk it wants next (skip-index driven).
    pub const NEXT_REQUEST: u8 = 0x2A;
    /// Close the session and wipe session state.
    pub const CLOSE_SESSION: u8 = 0x2C;
    /// Register a query to intersect with the access rules.
    pub const PUT_QUERY: u8 = 0x2E;
}

/// Common ISO 7816 status words.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatusWord(pub u16);

impl StatusWord {
    /// Normal completion.
    pub const OK: StatusWord = StatusWord(0x9000);
    /// Security status not satisfied (missing key, integrity failure...).
    pub const SECURITY_NOT_SATISFIED: StatusWord = StatusWord(0x6982);
    /// Conditions of use not satisfied (bad session state).
    pub const CONDITIONS_NOT_SATISFIED: StatusWord = StatusWord(0x6985);
    /// Wrong length.
    pub const WRONG_LENGTH: StatusWord = StatusWord(0x6700);
    /// File or object not found.
    pub const NOT_FOUND: StatusWord = StatusWord(0x6A82);
    /// Instruction not supported.
    pub const INS_NOT_SUPPORTED: StatusWord = StatusWord(0x6D00);
    /// Not enough memory in the card.
    pub const MEMORY_FAILURE: StatusWord = StatusWord(0x6581);

    /// True for the success status word.
    pub fn is_ok(self) -> bool {
        self.0 == 0x9000
    }
}

/// A command APDU.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Apdu {
    /// Class byte.
    pub cla: u8,
    /// Instruction byte.
    pub ins: u8,
    /// Parameter 1.
    pub p1: u8,
    /// Parameter 2.
    pub p2: u8,
    /// Command payload (Lc field drives its length).
    pub data: Vec<u8>,
    /// Maximum number of response bytes expected (Le), `0` meaning "up to 256".
    pub le: u8,
}

/// Maximum payload of a short APDU.
pub const MAX_SHORT_APDU_DATA: usize = 255;

impl Apdu {
    /// Creates a command with a payload.
    pub fn new(ins: u8, p1: u8, p2: u8, data: Vec<u8>) -> Result<Self, CardError> {
        if data.len() > MAX_SHORT_APDU_DATA {
            return Err(CardError::ApduTooLong {
                len: data.len(),
                max: MAX_SHORT_APDU_DATA,
            });
        }
        Ok(Apdu {
            cla: CLA_SDDS,
            ins,
            p1,
            p2,
            data,
            le: 0,
        })
    }

    /// Creates a command with no payload.
    pub fn simple(ins: u8, p1: u8, p2: u8) -> Self {
        Apdu {
            cla: CLA_SDDS,
            ins,
            p1,
            p2,
            data: Vec::new(),
            le: 0,
        }
    }

    /// Serialised length on the wire: header (4) + Lc (1 if data) + data + Le (1).
    pub fn wire_len(&self) -> usize {
        4 + if self.data.is_empty() {
            0
        } else {
            1 + self.data.len()
        } + 1
    }

    /// Serialises the command.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.wire_len());
        out.push(self.cla);
        out.push(self.ins);
        out.push(self.p1);
        out.push(self.p2);
        if !self.data.is_empty() {
            out.push(self.data.len() as u8);
            out.extend_from_slice(&self.data);
        }
        out.push(self.le);
        out
    }

    /// Parses a command serialised by [`Apdu::encode`].
    pub fn decode(bytes: &[u8]) -> Result<Self, CardError> {
        if bytes.len() < 5 {
            return Err(CardError::MalformedApdu {
                message: format!(
                    "APDU of {} bytes is shorter than the 5-byte minimum",
                    bytes.len()
                ),
            });
        }
        let (cla, ins, p1, p2) = (bytes[0], bytes[1], bytes[2], bytes[3]);
        if bytes.len() == 5 {
            return Ok(Apdu {
                cla,
                ins,
                p1,
                p2,
                data: Vec::new(),
                le: bytes[4],
            });
        }
        let lc = bytes[4] as usize;
        if bytes.len() != 5 + lc + 1 {
            return Err(CardError::MalformedApdu {
                message: format!("inconsistent Lc={lc} for an APDU of {} bytes", bytes.len()),
            });
        }
        Ok(Apdu {
            cla,
            ins,
            p1,
            p2,
            data: bytes[5..5 + lc].to_vec(),
            le: bytes[5 + lc],
        })
    }
}

/// A response APDU: optional data followed by the status word.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApduResponse {
    /// Response payload.
    pub data: Vec<u8>,
    /// Status word.
    pub status: StatusWord,
}

impl ApduResponse {
    /// Success with data.
    pub fn ok(data: Vec<u8>) -> Self {
        ApduResponse {
            data,
            status: StatusWord::OK,
        }
    }

    /// Success with no data.
    pub fn ok_empty() -> Self {
        ApduResponse::ok(Vec::new())
    }

    /// Error with a status word and no data.
    pub fn error(status: StatusWord) -> Self {
        ApduResponse {
            data: Vec::new(),
            status,
        }
    }

    /// Serialised length on the wire.
    pub fn wire_len(&self) -> usize {
        self.data.len() + 2
    }

    /// Serialises the response.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.wire_len());
        out.extend_from_slice(&self.data);
        out.extend_from_slice(&self.status.0.to_be_bytes());
        out
    }

    /// Parses a response.
    pub fn decode(bytes: &[u8]) -> Result<Self, CardError> {
        if bytes.len() < 2 {
            return Err(CardError::MalformedApdu {
                message: "response shorter than the status word".into(),
            });
        }
        let (data, sw) = bytes.split_at(bytes.len() - 2);
        Ok(ApduResponse {
            data: data.to_vec(),
            status: StatusWord(u16::from_be_bytes([sw[0], sw[1]])),
        })
    }
}

/// Splits a payload into APDU-sized fragments, preserving order. The terminal
/// proxy uses this to stream arbitrarily large encrypted chunks through the
/// 255-byte APDU window.
pub fn fragment_payload(payload: &[u8]) -> Vec<&[u8]> {
    if payload.is_empty() {
        // alloc: cold — zero-byte payload corner: a one-element list for the empty fragment.
        return vec![&[]];
    }
    // alloc: amortized — a directory of borrowed slices, one small Vec per exchange; the payload bytes are not copied.
    payload.chunks(MAX_SHORT_APDU_DATA).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip_with_and_without_data() {
        let cmd = Apdu::new(ins::PUSH_CHUNK, 1, 2, vec![9, 8, 7]).unwrap();
        let bytes = cmd.encode();
        assert_eq!(bytes.len(), cmd.wire_len());
        assert_eq!(Apdu::decode(&bytes).unwrap(), cmd);

        let cmd = Apdu::simple(ins::CLOSE_SESSION, 0, 0);
        let bytes = cmd.encode();
        assert_eq!(bytes.len(), 5);
        assert_eq!(Apdu::decode(&bytes).unwrap(), cmd);
    }

    #[test]
    fn oversized_payload_is_rejected() {
        assert!(matches!(
            Apdu::new(ins::PUSH_CHUNK, 0, 0, vec![0u8; 256]),
            Err(CardError::ApduTooLong { len: 256, max: 255 })
        ));
        assert!(Apdu::new(ins::PUSH_CHUNK, 0, 0, vec![0u8; 255]).is_ok());
    }

    #[test]
    fn malformed_apdus_are_rejected() {
        assert!(Apdu::decode(&[1, 2, 3]).is_err());
        // Lc says 10 bytes but only 2 present.
        assert!(Apdu::decode(&[0x80, 0x20, 0, 0, 10, 1, 2]).is_err());
    }

    #[test]
    fn response_roundtrip_and_status() {
        let r = ApduResponse::ok(vec![1, 2, 3]);
        assert!(r.status.is_ok());
        let back = ApduResponse::decode(&r.encode()).unwrap();
        assert_eq!(back, r);

        let e = ApduResponse::error(StatusWord::SECURITY_NOT_SATISFIED);
        assert!(!e.status.is_ok());
        assert_eq!(ApduResponse::decode(&e.encode()).unwrap(), e);
        assert!(ApduResponse::decode(&[0x90]).is_err());
    }

    #[test]
    fn fragmentation_respects_max_size_and_order() {
        let payload: Vec<u8> = (0..600u32).map(|i| (i % 256) as u8).collect();
        let frags = fragment_payload(&payload);
        assert_eq!(frags.len(), 3);
        assert!(frags.iter().all(|f| f.len() <= MAX_SHORT_APDU_DATA));
        let reassembled: Vec<u8> = frags.concat();
        assert_eq!(reassembled, payload);
        assert_eq!(fragment_payload(&[]).len(), 1);
    }
}
