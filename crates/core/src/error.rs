//! Error type of the access-control core.

use std::fmt;

/// Errors raised by rule compilation, the secure document codec and the engine.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// A rule object or query uses a construct outside the supported streaming
    /// fragment (e.g. predicates nested inside predicate paths).
    UnsupportedRule {
        /// The offending expression.
        expression: String,
        /// Why it is not supported by the streaming automata.
        reason: String,
    },
    /// A rule or query failed to parse.
    Parse(String),
    /// The secure document is malformed (bad magic, truncated section, ...).
    BadDocument {
        /// Description of the problem.
        message: String,
    },
    /// Cryptographic failure (integrity, missing key, ...).
    Crypto(sdds_crypto::CryptoError),
    /// Card-level failure (RAM budget exceeded, APDU problems, ...).
    Card(sdds_card::CardError),
    /// XML-level failure in the decoded document.
    Xml(sdds_xml::XmlError),
    /// The evaluation session is not in the expected state for the operation.
    BadState {
        /// Description of the problem.
        message: String,
    },
    /// The requested document is not stored at the DSP.
    NotFound {
        /// Identifier of the missing document.
        doc_id: String,
    },
    /// The DSP stores the document but no protected rule blob for the
    /// requesting subject.
    NoRulesForSubject {
        /// Document the rules were requested for.
        doc_id: String,
        /// Subject with no stored blob.
        subject: String,
    },
    /// A session pinned a document revision that has since been replaced:
    /// the typed staleness signal that replaces a torn read (chunks of the
    /// new upload verified against the old header's Merkle root).
    StaleRevision {
        /// Document whose revision moved.
        doc_id: String,
        /// Revision the session pinned at open.
        pinned: u64,
        /// Revision currently stored at the DSP.
        current: u64,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::UnsupportedRule { expression, reason } => {
                write!(f, "unsupported rule `{expression}`: {reason}")
            }
            CoreError::Parse(msg) => write!(f, "parse error: {msg}"),
            CoreError::BadDocument { message } => write!(f, "bad secure document: {message}"),
            CoreError::Crypto(e) => write!(f, "cryptographic error: {e}"),
            CoreError::Card(e) => write!(f, "card error: {e}"),
            CoreError::Xml(e) => write!(f, "xml error: {e}"),
            CoreError::BadState { message } => write!(f, "bad state: {message}"),
            CoreError::NotFound { doc_id } => {
                write!(f, "document `{doc_id}` is not stored at this DSP")
            }
            CoreError::NoRulesForSubject { doc_id, subject } => {
                write!(f, "no rules stored for subject `{subject}` on `{doc_id}`")
            }
            CoreError::StaleRevision {
                doc_id,
                pinned,
                current,
            } => write!(
                f,
                "document `{doc_id}` was republished mid-session: \
                 pinned revision {pinned}, now {current}"
            ),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<sdds_crypto::CryptoError> for CoreError {
    fn from(e: sdds_crypto::CryptoError) -> Self {
        CoreError::Crypto(e)
    }
}

impl From<sdds_card::CardError> for CoreError {
    fn from(e: sdds_card::CardError) -> Self {
        CoreError::Card(e)
    }
}

impl From<sdds_xml::XmlError> for CoreError {
    fn from(e: sdds_xml::XmlError) -> Self {
        CoreError::Xml(e)
    }
}

impl From<sdds_xpath::ParseError> for CoreError {
    fn from(e: sdds_xpath::ParseError) -> Self {
        CoreError::Parse(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: CoreError = sdds_crypto::CryptoError::BadPadding.into();
        assert!(e.to_string().contains("padding"));
        let e: CoreError = sdds_card::CardError::RamExceeded {
            requested: 1,
            in_use: 2,
            budget: 3,
        }
        .into();
        assert!(e.to_string().contains("RAM"));
        let e: CoreError = sdds_xml::XmlError::EmptyDocument.into();
        assert!(e.to_string().contains("root"));
        let e: CoreError = sdds_xpath::ParseError::new("bad", 0, "/x[").into();
        assert!(e.to_string().contains("bad"));
        let e = CoreError::UnsupportedRule {
            expression: "//a[b[c]]".into(),
            reason: "nested predicate".into(),
        };
        assert!(e.to_string().contains("nested predicate"));
        assert!(CoreError::BadState {
            message: "no session".into()
        }
        .to_string()
        .contains("no session"));
        assert!(CoreError::BadDocument {
            message: "magic".into()
        }
        .to_string()
        .contains("magic"));
    }

    #[test]
    fn storage_errors_are_typed_not_stringly() {
        let e = CoreError::NotFound {
            doc_id: "folder".into(),
        };
        assert!(e.to_string().contains("`folder`"));
        let e = CoreError::NoRulesForSubject {
            doc_id: "folder".into(),
            subject: "stranger".into(),
        };
        assert!(e.to_string().contains("`stranger`"));
        let e = CoreError::StaleRevision {
            doc_id: "folder".into(),
            pinned: 3,
            current: 4,
        };
        let text = e.to_string();
        assert!(text.contains("pinned revision 3") && text.contains("now 4"));
    }
}
