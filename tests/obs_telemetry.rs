//! Facade-level telemetry regression tests: the `ObsSnapshot` exposed by
//! [`sdds::Client::obs_snapshot`] must reflect what actually happened on the
//! serve, session, and error paths.
//!
//! The deterministic centrepiece is republish-under-reader: a stream pins
//! the revision it opened at, a republish lands between two `next()` calls,
//! and the resulting typed `StaleRevision` must show up both as the labelled
//! `dsp.errors{error=stale_revision}` counter and in the per-shard
//! `dsp.serve.stale_revisions` family.

use sdds::obs::families;
use sdds::{Client, Publisher, RuleSet, SddsError};
use sdds_xml::generator::{self, GeneratorConfig, HospitalProfile};

fn publisher() -> Publisher {
    let rules = RuleSet::parse(
        "+, doctor, //patient\n-, doctor, //patient/ssn\n+, secretary, //patient/name",
    )
    .unwrap();
    // Small chunks force multi-chunk sessions, so a mid-stream republish has
    // a chunk fetch left to go stale on.
    Publisher::builder(b"hospital-2005")
        .rules(rules)
        .chunk_size(128)
        .build()
        .unwrap()
}

fn hospital(patients: usize) -> sdds_xml::Document {
    generator::hospital(
        &HospitalProfile {
            patients,
            ..HospitalProfile::default()
        },
        &GeneratorConfig::default(),
    )
}

#[test]
fn authorized_view_populates_serve_and_session_telemetry() {
    let publisher = publisher();
    publisher.publish("folders", &hospital(4)).unwrap();
    let client = Client::builder("doctor").provision(&publisher).unwrap();

    let view = client.authorized_view("folders").unwrap();
    assert!(view.contains("<patient"));

    let snapshot = client.obs_snapshot();
    assert!(
        snapshot.counter(families::SERVE_REQUESTS) > 0,
        "serves must be counted: {snapshot:?}"
    );
    assert!(snapshot.counter(families::SERVE_BYTES) > 0);
    assert!(snapshot.counter(families::SESSION_APDUS) > 0);
    assert!(snapshot.counter(families::SESSION_WIRE_BYTES) > 0);
    let latency = snapshot
        .histogram(families::SERVE_LATENCY)
        .expect("serve latency histogram is registered");
    assert!(latency.count > 0, "every serve records a latency sample");
    assert_eq!(
        snapshot.counter(families::ERRORS),
        0,
        "clean run: no errors"
    );
}

#[test]
fn republish_under_reader_counts_stale_revisions() {
    let publisher = publisher();
    publisher.publish("folders", &hospital(4)).unwrap();
    let client = Client::builder("doctor").provision(&publisher).unwrap();

    let mut stream = client.open_stream("folders").unwrap();
    let first = stream.next().expect("document is non-empty").unwrap();
    assert!(matches!(first, sdds::Event::Open { .. }));

    // The republish lands while the stream still has chunks to pull; its
    // pinned revision is now stale, so draining must fail typed.
    publisher.publish("folders", &hospital(5)).unwrap();
    let outcome = stream.collect_view();
    assert!(
        matches!(outcome, Err(SddsError::StaleRevision { .. })),
        "mid-stream republish must surface as StaleRevision: {outcome:?}"
    );

    let snapshot = client.obs_snapshot();
    assert!(
        snapshot.counter_with(families::ERRORS, families::ERROR_STALE_REVISION) > 0,
        "stale serve must increment the labelled error counter: {snapshot:?}"
    );
    assert!(
        snapshot.counter(families::SERVE_STALE) > 0,
        "stale serve must also be attributed to a shard: {snapshot:?}"
    );
    assert!(
        snapshot.counter(families::SESSION_EVENTS) > 0,
        "events yielded before the failure were still delivered"
    );
}

#[test]
fn missing_document_counts_not_found() {
    let publisher = publisher();
    publisher.publish("folders", &hospital(2)).unwrap();
    let client = Client::builder("doctor").provision(&publisher).unwrap();

    let outcome = client.authorized_view("no-such-document");
    assert!(outcome.is_err(), "missing document must fail");

    let snapshot = client.obs_snapshot();
    assert!(
        snapshot.counter_with(families::ERRORS, families::ERROR_NOT_FOUND) > 0,
        "NotFound must increment the labelled error counter: {snapshot:?}"
    );
}
