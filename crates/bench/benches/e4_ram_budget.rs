//! E4 — evaluator working set vs. document depth (1 KiB budget).
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sdds_bench::workloads;
use sdds_core::evaluator::{EvaluatorConfig, StreamingEvaluator};
use sdds_xml::generator::{self, GeneratorConfig};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_ram_budget");
    group.sample_size(10);
    for depth in [8usize, 32, 64] {
        let doc = generator::deep_chain(depth, &GeneratorConfig::default());
        let events = doc.to_events();
        let rules = workloads::rule_pool(16);
        group.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, _| {
            b.iter(|| {
                let config = EvaluatorConfig::new(rules.clone(), "subject");
                let (_, stats) = StreamingEvaluator::evaluate_all(&config, &events).unwrap();
                stats.peak_ram_bytes()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
