//! Reference (tree-based) evaluation of the XP{[],*,//} fragment.
//!
//! This evaluator walks the in-memory [`Document`] arena. It is **not** what
//! runs inside the SOE — the streaming engine in `sdds-core` is — but it plays
//! two roles in the reproduction:
//!
//! 1. it is the *oracle* against which the streaming automata are validated
//!    (every streaming decision must agree with the tree semantics), and
//! 2. it is the evaluation component of the DOM baseline of experiment E9
//!    (materialise + evaluate on the terminal), whose memory footprint the
//!    paper argues is incompatible with a smart card.

use std::collections::BTreeSet;

use sdds_xml::{Document, NodeData, NodeId};

use crate::ast::{Axis, Path, Predicate, PredicateTarget, Step};

/// Evaluates an absolute `path` over `doc`, returning the matching element
/// nodes in document order.
pub fn evaluate(doc: &Document, path: &Path) -> Vec<NodeId> {
    let Some(root) = doc.root() else {
        return Vec::new();
    };
    // The context of the first step is the (virtual) document node, whose only
    // element child is the root element.
    let mut current: BTreeSet<NodeId> = document_step(doc, root, &path.steps[0]);
    for step in &path.steps[1..] {
        let mut next = BTreeSet::new();
        for &ctx in &current {
            for candidate in axis_candidates(doc, ctx, step.axis) {
                if step_matches(doc, candidate, step) {
                    next.insert(candidate);
                }
            }
        }
        current = next;
        if current.is_empty() {
            break;
        }
    }
    sort_document_order(doc, current)
}

/// Evaluates a path and returns `true` if at least one node matches.
pub fn matches_any(doc: &Document, path: &Path) -> bool {
    !evaluate(doc, path).is_empty()
}

/// Candidates of the first step, whose context is the virtual document node.
fn document_step(doc: &Document, root: NodeId, step: &Step) -> BTreeSet<NodeId> {
    let mut out = BTreeSet::new();
    match step.axis {
        Axis::Child => {
            if step_matches(doc, root, step) {
                out.insert(root);
            }
        }
        Axis::Descendant => {
            for n in doc.descendants(root) {
                if is_element(doc, n) && step_matches(doc, n, step) {
                    out.insert(n);
                }
            }
        }
    }
    out
}

fn is_element(doc: &Document, id: NodeId) -> bool {
    matches!(doc.data(id), NodeData::Element { .. })
}

fn axis_candidates(doc: &Document, ctx: NodeId, axis: Axis) -> Vec<NodeId> {
    match axis {
        Axis::Child => doc.element_children(ctx).collect(),
        Axis::Descendant => doc
            .descendants(ctx)
            .into_iter()
            .skip(1) // exclude the context node itself
            .filter(|&n| is_element(doc, n))
            .collect(),
    }
}

fn step_matches(doc: &Document, node: NodeId, step: &Step) -> bool {
    let Some(name) = doc.element_name(node) else {
        return false;
    };
    if !step.test.matches(name) {
        return false;
    }
    step.predicates
        .iter()
        .all(|p| predicate_holds(doc, node, p))
}

/// Evaluates one predicate against a context node.
pub fn predicate_holds(doc: &Document, ctx: NodeId, predicate: &Predicate) -> bool {
    match &predicate.target {
        PredicateTarget::Attribute(attr) => {
            let value = doc
                .attributes(ctx)
                .iter()
                .find(|a| &a.name == attr)
                .map(|a| a.value.clone());
            match (&predicate.condition, value) {
                (None, v) => v.is_some(),
                (Some((op, lit)), Some(v)) => op.compare(&v, lit),
                (Some(_), None) => false,
            }
        }
        PredicateTarget::SelfText => {
            // Value predicates compare against the *direct* text of the target
            // element (the concatenation of its immediate text children); this
            // is the semantics the streaming engine can evaluate without
            // buffering whole subtrees, and the tree oracle follows it so that
            // both evaluators agree.
            let text = doc.direct_text(ctx);
            match &predicate.condition {
                None => !text.is_empty(),
                Some((op, lit)) => op.compare(&text, lit),
            }
        }
        PredicateTarget::Path(rel) => {
            let targets = evaluate_relative(doc, ctx, rel);
            match &predicate.condition {
                None => !targets.is_empty(),
                Some((op, lit)) => targets
                    .iter()
                    .any(|&n| op.compare(&doc.direct_text(n), lit)),
            }
        }
        PredicateTarget::PathAttribute(rel, attr) => {
            let targets = evaluate_relative(doc, ctx, rel);
            targets.iter().any(|&n| {
                let value = doc
                    .attributes(n)
                    .iter()
                    .find(|a| &a.name == attr)
                    .map(|a| a.value.clone());
                match (&predicate.condition, value) {
                    (None, v) => v.is_some(),
                    (Some((op, lit)), Some(v)) => op.compare(&v, lit),
                    (Some(_), None) => false,
                }
            })
        }
    }
}

/// Evaluates a relative path from a context node.
pub fn evaluate_relative(doc: &Document, ctx: NodeId, path: &Path) -> Vec<NodeId> {
    let mut current: BTreeSet<NodeId> = [ctx].into_iter().collect();
    for step in &path.steps {
        let mut next = BTreeSet::new();
        for &c in &current {
            for candidate in axis_candidates(doc, c, step.axis) {
                if step_matches(doc, candidate, step) {
                    next.insert(candidate);
                }
            }
        }
        current = next;
        if current.is_empty() {
            break;
        }
    }
    sort_document_order(doc, current)
}

fn sort_document_order(doc: &Document, set: BTreeSet<NodeId>) -> Vec<NodeId> {
    // NodeIds are allocated in document order by the tree builder, so the
    // natural order of the ids *is* document order.
    let _ = doc;
    set.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use sdds_xml::Document;

    fn doc() -> Document {
        Document::parse(
            r#"<hospital>
                 <patient id="P1">
                   <name>Alice</name>
                   <diagnosis><item sensitive="true">flu</item><item sensitive="false">cold</item></diagnosis>
                   <acts>
                     <act type="surgery"><date>2004-05-01</date><report>ok</report></act>
                     <act type="consultation"><date>2004-06-01</date><report>fine</report></act>
                   </acts>
                 </patient>
                 <patient id="P2">
                   <name>Bob</name>
                   <diagnosis><item sensitive="false">sprain</item></diagnosis>
                   <acts><act type="radiology"><date>2004-07-01</date><report>xray</report></act></acts>
                 </patient>
               </hospital>"#,
        )
        .unwrap()
    }

    fn names(doc: &Document, nodes: &[NodeId]) -> Vec<String> {
        nodes
            .iter()
            .map(|&n| doc.element_name(n).unwrap().to_owned())
            .collect()
    }

    #[test]
    fn child_axis_paths() {
        let d = doc();
        let res = evaluate(&d, &parse("/hospital/patient/name").unwrap());
        assert_eq!(res.len(), 2);
        assert_eq!(names(&d, &res), vec!["name", "name"]);
        assert_eq!(d.deep_text(res[0]), "Alice");
    }

    #[test]
    fn descendant_axis_finds_all_matches() {
        let d = doc();
        assert_eq!(evaluate(&d, &parse("//act").unwrap()).len(), 3);
        assert_eq!(evaluate(&d, &parse("//patient//report").unwrap()).len(), 3);
        assert_eq!(evaluate(&d, &parse("//hospital").unwrap()).len(), 1);
    }

    #[test]
    fn wildcard_steps() {
        let d = doc();
        assert_eq!(evaluate(&d, &parse("/hospital/*").unwrap()).len(), 2);
        assert_eq!(evaluate(&d, &parse("/hospital/*/name").unwrap()).len(), 2);
        assert_eq!(evaluate(&d, &parse("/*").unwrap()).len(), 1);
    }

    #[test]
    fn attribute_predicates() {
        let d = doc();
        let res = evaluate(&d, &parse("//patient[@id = \"P1\"]/name").unwrap());
        assert_eq!(res.len(), 1);
        assert_eq!(d.deep_text(res[0]), "Alice");
        assert_eq!(
            evaluate(&d, &parse("//item[@sensitive = \"true\"]").unwrap()).len(),
            1
        );
        assert_eq!(evaluate(&d, &parse("//item[@sensitive]").unwrap()).len(), 3);
        assert_eq!(evaluate(&d, &parse("//item[@missing]").unwrap()).len(), 0);
    }

    #[test]
    fn element_path_predicates() {
        let d = doc();
        // patients that underwent surgery
        let res = evaluate(
            &d,
            &parse("//patient[acts/act/@type = \"surgery\"]").unwrap(),
        );
        assert_eq!(res.len(), 1);
        // existence predicate
        assert_eq!(
            evaluate(&d, &parse("//patient[diagnosis/item]").unwrap()).len(),
            2
        );
        // value predicate on element text
        let res = evaluate(&d, &parse("//act[date = \"2004-07-01\"]/report").unwrap());
        assert_eq!(res.len(), 1);
        assert_eq!(d.deep_text(res[0]), "xray");
    }

    #[test]
    fn relative_descendant_predicate() {
        let d = doc();
        assert_eq!(
            evaluate(&d, &parse("//patient[.//report]").unwrap()).len(),
            2
        );
        assert_eq!(
            evaluate(&d, &parse("//patient[.//report = \"xray\"]").unwrap()).len(),
            1
        );
    }

    #[test]
    fn self_text_predicate() {
        let d = doc();
        assert_eq!(
            evaluate(&d, &parse("//name[. = \"Bob\"]").unwrap()).len(),
            1
        );
        assert_eq!(
            evaluate(&d, &parse("//name[. = \"Carol\"]").unwrap()).len(),
            0
        );
        assert_eq!(evaluate(&d, &parse("//name[.]").unwrap()).len(), 2);
    }

    #[test]
    fn figure2_example_semantics() {
        // R: //b[c]/d on a document shaped like the paper's Figure 2 discussion.
        let d = Document::parse("<r><b><c/><d>keep</d></b><b><d>drop</d></b></r>").unwrap();
        let res = evaluate(&d, &parse("//b[c]/d").unwrap());
        assert_eq!(res.len(), 1);
        assert_eq!(d.deep_text(res[0]), "keep");
    }

    #[test]
    fn no_match_paths_return_empty() {
        let d = doc();
        assert!(evaluate(&d, &parse("/nosuch").unwrap()).is_empty());
        assert!(evaluate(&d, &parse("//nosuch/deeper").unwrap()).is_empty());
        assert!(!matches_any(&d, &parse("//nosuch").unwrap()));
        assert!(matches_any(&d, &parse("//act").unwrap()));
    }

    #[test]
    fn results_are_in_document_order_without_duplicates() {
        let d = Document::parse("<a><b><b><c/></b></b><b><c/></b></a>").unwrap();
        let res = evaluate(&d, &parse("//b//c").unwrap());
        // Two c elements, each reported once even though reachable through
        // several b ancestors.
        assert_eq!(res.len(), 2);
        let mut sorted = res.clone();
        sorted.sort();
        assert_eq!(res, sorted);
    }

    #[test]
    fn numeric_comparison_predicates() {
        let d = Document::parse(
            "<stream><item><rating>7</rating></item><item><rating>16</rating></item></stream>",
        )
        .unwrap();
        assert_eq!(
            evaluate(&d, &parse("//item[rating <= 12]").unwrap()).len(),
            1
        );
        assert_eq!(evaluate(&d, &parse("//item[rating > 2]").unwrap()).len(), 2);
        assert_eq!(evaluate(&d, &parse("//rating[. >= 16]").unwrap()).len(), 1);
    }

    #[test]
    fn empty_document_matches_nothing() {
        let d = Document::new();
        assert!(evaluate(&d, &parse("//a").unwrap()).is_empty());
    }
}
