//! Tag dictionary and tag-set bit arrays.
//!
//! The skip index (§2.3) "compresses the document structure using a dictionary
//! of tags and encodes the set of tags thanks to a bit array referring to the
//! tag dictionary". [`TagDict`] is that dictionary — a bijection between tag
//! names and small integer ids — and [`TagSet`] is the bit array recording
//! which tags occur in a subtree.

use std::collections::HashMap;
use std::fmt;

/// A small integer identifying a tag name in a [`TagDict`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TagId(pub u16);

impl TagId {
    /// Returns the raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A bijection between tag names and [`TagId`]s, built when a document is
/// encoded and shipped (encrypted) with the document so that the SOE can map
/// rule node-tests to bit positions.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TagDict {
    names: Vec<String>,
    ids: HashMap<String, TagId>,
}

impl TagDict {
    /// Creates an empty dictionary.
    pub fn new() -> Self {
        TagDict::default()
    }

    /// Builds a dictionary from an iterator of tag names (duplicates allowed).
    pub fn from_names<I, S>(names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut dict = TagDict::new();
        for n in names {
            dict.intern(n.as_ref());
        }
        dict
    }

    /// Interns `name`, returning its id (existing or freshly assigned).
    ///
    /// # Panics
    /// Panics if more than `u16::MAX` distinct tags are interned; real XML
    /// vocabularies are orders of magnitude smaller (the paper's corpora have
    /// fewer than a hundred distinct tags).
    pub fn intern(&mut self, name: &str) -> TagId {
        if let Some(&id) = self.ids.get(name) {
            return id;
        }
        // lint: infallible — the u16 tag-id space is a documented capacity
        // limit (see the doc comment above); the paper's corpora stay two
        // orders of magnitude below it.
        let id = TagId(u16::try_from(self.names.len()).expect("too many distinct tags"));
        // alloc: amortized — the first occurrence of a tag allocates; repeats hit the index.
        self.names.push(name.to_owned());
        // alloc: amortized — the first occurrence of a tag allocates; repeats hit the index.
        self.ids.insert(name.to_owned(), id);
        id
    }

    /// Looks up the id of `name` without interning.
    pub fn get(&self, name: &str) -> Option<TagId> {
        self.ids.get(name).copied()
    }

    /// Returns the name for `id`.
    pub fn name(&self, id: TagId) -> Option<&str> {
        self.names.get(id.index()).map(String::as_str)
    }

    /// Number of distinct tags.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if no tag has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over `(id, name)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (TagId, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (TagId(i as u16), n.as_str()))
    }

    /// Serialised size of the dictionary in bytes (length-prefixed names),
    /// as accounted by the secure-document encoder.
    pub fn encoded_len(&self) -> usize {
        2 + self.names.iter().map(|n| 1 + n.len()).sum::<usize>()
    }

    /// Serialises the dictionary (u16 count, then length-prefixed UTF-8 names).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.encoded_len());
        out.extend_from_slice(&(self.names.len() as u16).to_le_bytes());
        for n in &self.names {
            debug_assert!(n.len() <= u8::MAX as usize, "tag name too long");
            out.push(n.len() as u8);
            out.extend_from_slice(n.as_bytes());
        }
        out
    }

    /// Deserialises a dictionary previously produced by [`TagDict::encode`].
    pub fn decode(bytes: &[u8]) -> Option<(Self, usize)> {
        if bytes.len() < 2 {
            return None;
        }
        let count = u16::from_le_bytes([bytes[0], bytes[1]]) as usize;
        let mut dict = TagDict::new();
        let mut pos = 2usize;
        for _ in 0..count {
            let len = *bytes.get(pos)? as usize;
            pos += 1;
            let name = std::str::from_utf8(bytes.get(pos..pos + len)?).ok()?;
            pos += len;
            dict.intern(name);
        }
        Some((dict, pos))
    }
}

/// A set of tags, stored as a bit array over a [`TagDict`].
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct TagSet {
    bits: Vec<u64>,
}

impl TagSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        TagSet::default()
    }

    /// Creates an empty set pre-sized for `n` distinct tags.
    pub fn with_capacity(n: usize) -> Self {
        TagSet {
            // alloc: amortized — one bitmap per set, bounded by the dictionary size.
            bits: vec![0; n.div_ceil(64)],
        }
    }

    /// Inserts `id`. Returns true if it was not present.
    pub fn insert(&mut self, id: TagId) -> bool {
        let (word, bit) = (id.index() / 64, id.index() % 64);
        if word >= self.bits.len() {
            self.bits.resize(word + 1, 0);
        }
        let had = self.bits[word] & (1 << bit) != 0;
        self.bits[word] |= 1 << bit;
        !had
    }

    /// Tests membership of `id`.
    pub fn contains(&self, id: TagId) -> bool {
        let (word, bit) = (id.index() / 64, id.index() % 64);
        self.bits.get(word).is_some_and(|w| w & (1 << bit) != 0)
    }

    /// Number of tags in the set.
    pub fn len(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True if the set contains no tag.
    pub fn is_empty(&self) -> bool {
        self.bits.iter().all(|&w| w == 0)
    }

    /// In-place union with `other`.
    pub fn union_with(&mut self, other: &TagSet) {
        if other.bits.len() > self.bits.len() {
            self.bits.resize(other.bits.len(), 0);
        }
        for (a, b) in self.bits.iter_mut().zip(other.bits.iter()) {
            *a |= *b;
        }
    }

    /// True if every tag of `other` is in `self`.
    pub fn is_superset(&self, other: &TagSet) -> bool {
        for (i, &w) in other.bits.iter().enumerate() {
            let own = self.bits.get(i).copied().unwrap_or(0);
            if w & !own != 0 {
                return false;
            }
        }
        true
    }

    /// True if the two sets share at least one tag.
    pub fn intersects(&self, other: &TagSet) -> bool {
        self.bits
            .iter()
            .zip(other.bits.iter())
            .any(|(a, b)| a & b != 0)
    }

    /// Iterates over the ids present in the set, in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = TagId> + '_ {
        self.bits.iter().enumerate().flat_map(|(word, &w)| {
            (0..64)
                .filter(move |bit| w & (1 << bit) != 0)
                .map(move |bit| TagId((word * 64 + bit) as u16))
        })
    }

    /// Clears the set, keeping its capacity.
    pub fn clear(&mut self) {
        self.bits.iter_mut().for_each(|w| *w = 0);
    }

    /// Returns the packed bit-array, trimmed of trailing zero bytes, for the
    /// dictionary size `dict_len`. This is the representation embedded in the
    /// skip index before recursive compression.
    pub fn to_bytes(&self, dict_len: usize) -> Vec<u8> {
        let nbytes = dict_len.div_ceil(8);
        let mut out = vec![0u8; nbytes];
        for id in self.iter() {
            let idx = id.index();
            if idx / 8 < nbytes {
                out[idx / 8] |= 1 << (idx % 8);
            }
        }
        out
    }

    /// Rebuilds a set from a packed bit-array.
    pub fn from_bytes(bytes: &[u8]) -> Self {
        let mut set = TagSet::new();
        for (i, &b) in bytes.iter().enumerate() {
            for bit in 0..8 {
                if b & (1 << bit) != 0 {
                    set.insert(TagId((i * 8 + bit) as u16));
                }
            }
        }
        set
    }
}

impl fmt::Debug for TagSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TagSet{{")?;
        for (i, id) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{}", id.0)?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<TagId> for TagSet {
    fn from_iter<T: IntoIterator<Item = TagId>>(iter: T) -> Self {
        let mut set = TagSet::new();
        for id in iter {
            set.insert(id);
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dict_interning_is_idempotent() {
        let mut d = TagDict::new();
        let a = d.intern("a");
        let b = d.intern("b");
        assert_ne!(a, b);
        assert_eq!(d.intern("a"), a);
        assert_eq!(d.len(), 2);
        assert_eq!(d.name(a), Some("a"));
        assert_eq!(d.get("b"), Some(b));
        assert_eq!(d.get("zz"), None);
    }

    #[test]
    fn dict_encode_decode_roundtrip() {
        let d = TagDict::from_names(["hospital", "patient", "diagnosis", "act"]);
        let bytes = d.encode();
        assert_eq!(bytes.len(), d.encoded_len());
        let (d2, used) = TagDict::decode(&bytes).unwrap();
        assert_eq!(used, bytes.len());
        assert_eq!(d, d2);
    }

    #[test]
    fn dict_decode_rejects_truncated_input() {
        let d = TagDict::from_names(["a", "b"]);
        let bytes = d.encode();
        assert!(TagDict::decode(&bytes[..bytes.len() - 1]).is_none());
        assert!(TagDict::decode(&[]).is_none());
    }

    #[test]
    fn tagset_basic_operations() {
        let mut s = TagSet::new();
        assert!(s.is_empty());
        assert!(s.insert(TagId(3)));
        assert!(!s.insert(TagId(3)));
        assert!(s.insert(TagId(70)));
        assert!(s.contains(TagId(3)));
        assert!(s.contains(TagId(70)));
        assert!(!s.contains(TagId(4)));
        assert_eq!(s.len(), 2);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![TagId(3), TagId(70)]);
        s.clear();
        assert!(s.is_empty());
    }

    #[test]
    fn tagset_union_superset_intersection() {
        let a: TagSet = [TagId(1), TagId(2), TagId(65)].into_iter().collect();
        let b: TagSet = [TagId(2)].into_iter().collect();
        let c: TagSet = [TagId(9)].into_iter().collect();
        assert!(a.is_superset(&b));
        assert!(!b.is_superset(&a));
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
        let mut u = b.clone();
        u.union_with(&c);
        assert!(u.contains(TagId(2)) && u.contains(TagId(9)));
        assert!(a.is_superset(&TagSet::new()));
    }

    #[test]
    fn tagset_bytes_roundtrip() {
        let a: TagSet = [TagId(0), TagId(7), TagId(12)].into_iter().collect();
        let bytes = a.to_bytes(16);
        assert_eq!(bytes.len(), 2);
        let back = TagSet::from_bytes(&bytes);
        assert_eq!(a, back);
    }

    #[test]
    fn tagset_debug_lists_members() {
        let a: TagSet = [TagId(1), TagId(5)].into_iter().collect();
        assert_eq!(format!("{a:?}"), "TagSet{1,5}");
    }
}
