//! Medical-folder scenario (the paper's motivating healthcare example):
//! a hospital publishes encrypted patient folders; doctors, secretaries and
//! researchers get different views; an emergency exception is granted by just
//! shipping a new protected rule set — the encrypted folder never changes.
//!
//! Run with: `cargo run --example medical_folder`

use sdds::{Client, CostModel, Publisher, RuleSet, SddsError, Sign};
use sdds_xml::generator::{self, GeneratorConfig, HospitalProfile};

fn view_of(
    publisher: &Publisher,
    subject: &str,
    query: Option<&str>,
) -> Result<(String, usize), SddsError> {
    let mut builder = Client::builder(subject);
    if let Some(q) = query {
        builder = builder.query(q);
    }
    let client = builder.provision(publisher)?;
    publisher.service().reset_stats();
    let mut session = client.connect("patient-folders")?;
    let view = session.run()?.to_owned();
    let latency = session.terminal().latency(&CostModel::egate());
    println!(
        "  [{subject}] {} bytes served by the DSP, simulated e-gate latency: {}",
        publisher.stats().bytes_served,
        latency.summary_ms()
    );
    Ok((view, publisher.stats().bytes_served))
}

fn main() -> Result<(), SddsError> {
    // Synthetic hospital folder (the real corpus of the paper is not public).
    let folder = generator::hospital(
        &HospitalProfile {
            patients: 8,
            ..HospitalProfile::default()
        },
        &GeneratorConfig::default(),
    );

    let rules = RuleSet::parse(
        "+, doctor, //patient\n\
         -, doctor, //patient/ssn\n\
         +, secretary, //patient/name\n\
         +, secretary, //patient/address\n\
         +, researcher, //diagnosis",
    )?;
    let mut publisher = Publisher::new(b"hospital-2005", rules);

    let receipt = publisher.publish("patient-folders", &folder)?;
    println!(
        "published patient folders: {} chunks, index overhead {} bytes",
        receipt.chunks, receipt.index_bytes
    );

    println!("\n-- regular accesses --");
    let (doctor_view, doctor_bytes) = view_of(&publisher, "doctor", None)?;
    let (secretary_view, secretary_bytes) = view_of(&publisher, "secretary", None)?;
    let (_, _) = view_of(&publisher, "researcher", Some("//diagnosis"))?;
    println!(
        "  doctor view: {} bytes / secretary view: {} bytes",
        doctor_view.len(),
        secretary_view.len()
    );
    println!(
        "  the secretary's restricted rights let the card skip data: {} vs {} bytes fetched",
        secretary_bytes, doctor_bytes
    );

    // Emergency exception: the on-call nurse gets temporary access to the
    // diagnosis of every patient. Only a new protected rule set is shipped.
    println!("\n-- emergency exception for the on-call nurse --");
    publisher.grant("nurse", Sign::Permit, "//patient/name")?;
    publisher.grant("nurse", Sign::Permit, "//diagnosis")?;
    let (nurse_view, _) = view_of(&publisher, "nurse", None)?;
    println!(
        "  nurse now sees {} bytes; the encrypted folder at the DSP was not touched (revision {})",
        nurse_view.len(),
        publisher
            .service()
            .revision("patient-folders")
            .expect("folder is stored")
    );
    Ok(())
}
