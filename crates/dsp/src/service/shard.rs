//! FNV-sharded, concurrently accessible document store with hot-document
//! replication.
//!
//! The single-tenant [`DspStore`] sits behind one `&mut self` API: every
//! request of every client serializes on the same structure, which is exactly
//! the bottleneck the E10 experiment measures. [`ShardedStore`] splits the
//! document space over `N` shards keyed by the FNV-1a hash of the document id;
//! each shard holds its own [`DspStore`] and its own [`AtomicServerStats`]
//! behind its own `RwLock`, so requests for documents on different shards
//! proceed concurrently.
//!
//! **Serving takes the shard's *read* lock.** The only state a serve mutates
//! is its shard's statistics, and those are relaxed atomics
//! ([`AtomicServerStats`]) — so same-shard readers proceed concurrently too,
//! and only the write paths (`put_document`, rule-blob sync, replication,
//! `reset_stats`) take the write lock. The DSP is a read-mostly content
//! server: millions of card-holders pull, publishers rarely push.
//!
//! **Hot documents replicate.** A single document all clients hammer still
//! queues on one shard's serial capacity, whatever the shard count. The store
//! therefore keeps a replica directory: a document that is pinned
//! ([`ShardedStore::pin_replicas`], reachable through the facade's
//! `Publisher::builder().replicate(n)`) — or whose serve count crosses the
//! [`HotPolicy`] threshold — gets read-only clones on further shards, and
//! reads spread over the copies deterministically (chunk index / subject hash
//! picks the copy, so per-shard accounting is interleaving independent).
//! Republishing **invalidates the clones before the new revision lands** and
//! re-replicates pinned documents afterwards, so a replica can never serve a
//! revision its home shard has abandoned; a reader that raced the
//! invalidation falls back to the home shard. On top of that, every fetch can
//! carry a **pinned revision** (`fetch_*_pinned`): a mismatch — e.g. a
//! republish in the middle of a card session — returns the typed
//! [`CoreError::StaleRevision`] instead of letting chunks of the new upload
//! fail Merkle verification against the old header.
//!
//! Global statistics are obtained by merging the per-shard counters on read
//! ([`ShardedStore::stats`]), using the same [`ServerStats::merge`] the
//! single-tenant server tests pin.

use sdds_sync::sync::atomic::{AtomicUsize, Ordering};
use sdds_sync::sync::{Arc, RwLock, RwLockExt};
use std::collections::HashMap;
use std::hash::Hasher;

use sdds_core::secdoc::{DocumentHeader, SecureDocument};
use sdds_core::session::ProtectedRules;
use sdds_core::CoreError;
use sdds_crypto::merkle::MerkleProof;
use sdds_xml::symbols::Fnv1a;

use crate::obs::ServeObs;
use crate::server::{AtomicServerStats, ServerStats};
use crate::store::{DocumentRecord, DspStore};

// ---------------------------------------------------------------------------
// The one serving path of the workspace: every header, chunk and rule blob —
// whether requested through the sharded service or through the single-tenant
// `DspServer` wrapper, from a home shard or a replica — is served and
// accounted by these helpers.
// ---------------------------------------------------------------------------

/// Rejects a serve whose session pinned a revision the record no longer has.
fn check_revision(record: &DocumentRecord, pinned: Option<u64>) -> Result<(), CoreError> {
    match pinned {
        Some(rev) if record.revision != rev => Err(CoreError::StaleRevision {
            // alloc: cold — stale-revision error path.
            doc_id: record.document.header.doc_id.clone(),
            pinned: rev,
            current: record.revision,
        }),
        _ => Ok(()),
    }
}

/// Serves a document header out of `record`, accounting it on `stats`.
fn serve_header(
    record: &DocumentRecord,
    stats: &AtomicServerStats,
    pinned: Option<u64>,
) -> Result<DocumentHeader, CoreError> {
    check_revision(record, pinned)?;
    // alloc: startup — one header fetch per card session (the SOE caches it);
    // chunk serves, the per-event path, share ciphertext without copying.
    let header = record.document.header.clone();
    stats.record_header(header.encoded_len());
    Ok(header)
}

/// Serves one encrypted chunk and its Merkle proof out of `record`.
///
/// The ciphertext is shared, not copied: the returned [`Arc`] aliases the
/// stored chunk, so the per-event cost is a refcount bump plus the (small)
/// Merkle sibling path, regardless of the chunk size.
fn serve_chunk(
    record: &DocumentRecord,
    stats: &AtomicServerStats,
    index: u32,
    pinned: Option<u64>,
) -> Result<(Arc<[u8]>, MerkleProof), CoreError> {
    check_revision(record, pinned)?;
    let doc_id = &record.document.header.doc_id;
    let chunk = record
        .document
        .chunk_shared(index as usize)
        .ok_or_else(|| CoreError::BadState {
            // alloc: cold — out-of-range error path, never taken by a
            // well-formed session.
            message: format!("chunk {index} out of range for `{doc_id}`"),
        })?;
    let proof = record.document.proof(index as usize)?;
    stats.record_chunk(chunk.len() + proof.encoded_len());
    Ok((chunk, proof))
}

/// Serves the protected rule blob of `subject` out of `record`. The blob is
/// `Arc`-shared with the store, so a serve never copies it.
fn serve_rules(
    record: &DocumentRecord,
    stats: &AtomicServerStats,
    subject: &str,
    pinned: Option<u64>,
) -> Result<Arc<[u8]>, CoreError> {
    check_revision(record, pinned)?;
    let blob = record
        .rules
        .get(subject)
        .ok_or_else(|| CoreError::NoRulesForSubject {
            // alloc: cold — unknown-subject error path.
            doc_id: record.document.header.doc_id.clone(),
            // alloc: cold — unknown-subject error path.
            subject: subject.to_owned(),
        })?;
    stats.record_rules(blob.len());
    Ok(Arc::clone(blob))
}

/// FNV-1a over the document id (the workspace's [`Fnv1a`] hasher) — stable
/// and good enough to spread ids of the form `folder-<n>` evenly over a
/// handful of shards.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hasher = Fnv1a::default();
    hasher.write(bytes);
    hasher.finish()
}

/// Replication policy for documents that become hot organically: once a
/// document's serve count **reaches** `threshold` (clamped to at least 1),
/// it is cloned so `replicas` shards serve it (clamped to the shard count).
/// Disabled by default; see [`ShardedStore::with_hot_policy`]. Explicitly
/// pinned documents ([`ShardedStore::pin_replicas`]) ignore the threshold.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HotPolicy {
    /// Serves (since upload) at which a document is considered hot (`0`
    /// behaves like `1`: the first serve replicates).
    pub threshold: usize,
    /// Total shards that should serve a hot document (home copy included).
    pub replicas: usize,
}

/// Replica directory entry of one document.
#[derive(Debug)]
struct ReplicaEntry {
    /// Shards serving this document; `shards[0]` is the home shard, the rest
    /// hold read-only clones. Clone staleness needs no revision bookkeeping
    /// here: republishing physically removes the clones before the new
    /// revision lands, and pinned fetches check the served record itself.
    shards: Vec<usize>,
    /// Replication degree requested by a publisher pin (`None`: threshold
    /// driven only). Pinned documents re-replicate after every republish.
    pinned: Option<usize>,
    /// Serves since upload — drives the [`HotPolicy`] threshold.
    serves: AtomicUsize,
}

/// One shard: a plain store, read-only clones of hot documents homed on
/// *other* shards, and the serving counters. Clones of one document share
/// one heap allocation (`Arc`) until a rule-blob sync diverges them.
#[derive(Debug, Default)]
struct Shard {
    store: DspStore,
    replicas: HashMap<String, Arc<DocumentRecord>>,
    stats: AtomicServerStats,
}

/// A document store sharded by FNV of the document id, with optional
/// hot-document replication (see the module docs).
#[derive(Debug)]
pub struct ShardedStore {
    shards: Vec<RwLock<Shard>>,
    /// Replica directory: which shards serve which document. Lock order is
    /// always directory → shard, and serves drop the directory lock before
    /// taking a shard lock, so the two levels cannot deadlock.
    directory: RwLock<HashMap<String, ReplicaEntry>>,
    /// Documents currently serving from more than one shard. The serve fast
    /// path checks this before touching the directory lock, so a store with
    /// no replication shares no routing state between shards at all.
    replicated: AtomicUsize,
    hot: Option<HotPolicy>,
    /// Serving telemetry: latency spans, routing and error counters. The
    /// payload accounting itself stays in each shard's
    /// [`AtomicServerStats`]; `obs` only adds parallel tallies, so the
    /// deterministic per-shard byte counts the capacity model reads are
    /// untouched by instrumentation.
    obs: ServeObs,
}

impl ShardedStore {
    /// Creates a store with `shards` shards. A count of `0` is **clamped to
    /// 1** — a store with no shards cannot hold anything, so the degenerate
    /// request silently becomes the single-tenant layout (the facade's
    /// `Publisher::builder().shards(0)` rejects it at build time instead;
    /// `zero_shards_clamps_to_one` pins the clamp).
    pub fn new(shards: usize) -> Self {
        let count = shards.max(1);
        ShardedStore {
            shards: (0..count).map(|_| RwLock::new(Shard::default())).collect(),
            directory: RwLock::new(HashMap::new()),
            replicated: AtomicUsize::new(0),
            hot: None,
            obs: ServeObs::detached(count),
        }
    }

    /// Attaches registry-backed serving telemetry (see
    /// [`crate::obs::DspObs`]): each shard's [`AtomicServerStats`] is
    /// swapped for the registered cells of `obs`, so the registry snapshot
    /// reports the same counters [`ShardedStore::stats`] merges. Call at
    /// construction time, before any document is served.
    pub fn with_obs(self, obs: ServeObs) -> Self {
        for (index, shard) in self.shards.iter().enumerate() {
            shard.write_np().stats = obs.shard(index).stats.clone();
        }
        ShardedStore { obs, ..self }
    }

    /// The serving telemetry handles.
    pub fn obs(&self) -> &ServeObs {
        &self.obs
    }

    /// Enables threshold-driven replication: once a document's serve count
    /// since upload reaches `policy.threshold` (at least 1), it is cloned so
    /// `policy.replicas` shards serve it.
    pub fn with_hot_policy(mut self, policy: HotPolicy) -> Self {
        self.hot = Some(policy);
        self
    }

    /// The configured hot-document policy, if any.
    pub fn hot_policy(&self) -> Option<HotPolicy> {
        self.hot
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Index of the home shard owning `doc_id`.
    pub fn shard_of(&self, doc_id: &str) -> usize {
        (fnv1a(doc_id.as_bytes()) % self.shards.len() as u64) as usize
    }

    /// Shards currently serving `doc_id` (home first). A single-element
    /// answer means the document is not replicated.
    pub fn replica_shards(&self, doc_id: &str) -> Vec<usize> {
        self.directory
            .read_np()
            .get(doc_id)
            .map(|entry| entry.shards.clone())
            .unwrap_or_else(|| vec![self.shard_of(doc_id)])
    }

    /// Picks the shard that serves this request: the home shard, unless the
    /// document is replicated — then `salt` (chunk index, subject hash)
    /// selects a copy, deterministically per request, so per-shard byte
    /// accounting does not depend on thread interleaving.
    fn route(&self, doc_id: &str, salt: u64) -> usize {
        // Fast path: with nothing replicated anywhere, readers never touch
        // the (global) directory lock — shards stay fully independent.
        if self.replicated.load(Ordering::Relaxed) == 0 {
            return self.shard_of(doc_id);
        }
        let directory = self.directory.read_np();
        match directory.get(doc_id) {
            Some(entry) if entry.shards.len() > 1 => {
                entry.shards[(salt % entry.shards.len() as u64) as usize]
            }
            _ => self.shard_of(doc_id),
        }
    }

    /// Serves one request under a shard **read** lock: routed to a replica
    /// when the document is hot, falling back to the home shard when the
    /// routed clone vanished (republish invalidation won the race).
    fn serve<T>(
        &self,
        doc_id: &str,
        salt: u64,
        serve: impl Fn(&DocumentRecord, &AtomicServerStats) -> Result<T, CoreError>,
    ) -> Result<T, CoreError> {
        let started = if self.obs.live {
            self.obs.recorder.now_nanos()
        } else {
            0
        };
        let home = self.shard_of(doc_id);
        let routed = self.route(doc_id, salt);
        let (served, served_on) = self.serve_routed(doc_id, home, routed, serve);
        self.obs
            .finish_serve(served_on, started, served.as_ref().err());
        served
    }

    /// The routing body of [`ShardedStore::serve`], split out so the serve
    /// wrapper can account latency and errors against the shard that
    /// actually answered (returned alongside the result).
    fn serve_routed<T>(
        &self,
        doc_id: &str,
        home: usize,
        routed: usize,
        serve: impl Fn(&DocumentRecord, &AtomicServerStats) -> Result<T, CoreError>,
    ) -> (Result<T, CoreError>, usize) {
        if routed != home {
            let shard = self.shards[routed].read_np();
            if let Some(record) = shard.replicas.get(doc_id) {
                let served = serve(record.as_ref(), &shard.stats);
                drop(shard);
                if self.obs.live {
                    self.obs.shard(routed).replica_routes.inc();
                }
                self.note_serve(doc_id);
                return (served, routed);
            }
        }
        let shard = self.shards[home].read_np();
        let Some(record) = shard.store.get(doc_id) else {
            return (
                Err(CoreError::NotFound {
                    // alloc: cold — unknown-document error path.
                    doc_id: doc_id.to_owned(),
                }),
                home,
            );
        };
        let served = serve(record, &shard.stats);
        drop(shard);
        self.note_serve(doc_id);
        (served, home)
    }

    /// Counts one serve towards the hot threshold and replicates on the
    /// exact crossing (the `fetch_add` ticket makes the trigger fire once).
    fn note_serve(&self, doc_id: &str) {
        let Some(policy) = self.hot else { return };
        // A threshold of 0 means "replicate as eagerly as possible": the
        // trigger fires on the exact crossing ticket, so the effective
        // threshold is at least the first serve.
        let threshold = policy.threshold.max(1);
        let crossed = {
            let directory = self.directory.read_np();
            match directory.get(doc_id) {
                Some(entry) => {
                    let serves = entry.serves.fetch_add(1, Ordering::Relaxed) + 1;
                    serves == threshold && entry.shards.len() == 1
                }
                None => {
                    drop(directory);
                    let mut directory = self.directory.write_np();
                    // alloc: amortized — the directory entry is created once per document; later serves only bump an atomic.
                    let entry = directory.entry(doc_id.to_owned()).or_insert(ReplicaEntry {
                        // alloc: amortized — the directory entry is created once per document; later serves only bump an atomic.
                        shards: vec![self.shard_of(doc_id)],
                        pinned: None,
                        serves: AtomicUsize::new(0),
                    });
                    let serves = entry.serves.fetch_add(1, Ordering::Relaxed) + 1;
                    serves == threshold && entry.shards.len() == 1
                }
            }
        };
        if crossed {
            let mut directory = self.directory.write_np();
            // Re-validate under the write lock: between the crossing and
            // here, a pin may have installed its own (authoritative) layout,
            // or a republish may have reset the serve count — in either case
            // the route is no longer this trigger's to change.
            let still_eligible = directory.get(doc_id).is_some_and(|entry| {
                entry.shards.len() == 1
                    && entry.pinned.is_none()
                    && entry.serves.load(Ordering::Relaxed) >= threshold
            });
            if still_eligible {
                self.replicate_locked(&mut directory, doc_id, policy.replicas);
            }
        }
    }

    /// Clones `doc_id` so `copies` shards serve it (clamped to `[1,
    /// shard_count]`), with the replica directory write lock held: one deep
    /// clone of the home record, shared by every copy behind an `Arc`,
    /// installed on the following shards (wrapping), then the new route is
    /// published. No-op for unknown documents.
    ///
    /// Holding the directory lock across the installation is deliberate: it
    /// serializes replication against republish invalidation, which is what
    /// makes "a clone can never serve an abandoned revision" a lock-order
    /// argument instead of a data race. Writes are rare on this read-mostly
    /// server, and the held-lock work is one record clone plus `copies`
    /// `Arc` clones.
    fn replicate_locked(
        &self,
        directory: &mut HashMap<String, ReplicaEntry>,
        doc_id: &str,
        copies: usize,
    ) {
        let copies = copies.clamp(1, self.shards.len());
        let home = self.shard_of(doc_id);
        let record = {
            let shard = self.shards[home].read_np();
            match shard.store.get(doc_id) {
                // alloc: cold — replication runs once, when a document crosses the hot threshold.
                Some(record) => Arc::new(record.clone()),
                None => return,
            }
        };
        // alloc: cold — replication runs once, when a document crosses the hot threshold.
        let mut shards = vec![home];
        for offset in 1..copies {
            let target = (home + offset) % self.shards.len();
            self.shards[target]
                .write_np()
                .replicas
                // alloc: cold — replication runs once, when a document crosses the hot threshold.
                .insert(doc_id.to_owned(), Arc::clone(&record));
            shards.push(target);
        }
        // alloc: cold — replication runs once, when a document crosses the hot threshold.
        let entry = directory.entry(doc_id.to_owned()).or_insert(ReplicaEntry {
            // alloc: cold — replication runs once, when a document crosses the hot threshold.
            shards: vec![home],
            pinned: None,
            serves: AtomicUsize::new(0),
        });
        if entry.shards.len() <= 1 && shards.len() > 1 {
            self.replicated.fetch_add(1, Ordering::Relaxed);
        }
        entry.shards = shards;
    }

    /// Removes every clone of `doc_id` and routes readers back to the home
    /// shard, with the directory write lock held. Returns the pin degree so
    /// a republish can re-replicate.
    fn invalidate_locked(
        &self,
        directory: &mut HashMap<String, ReplicaEntry>,
        doc_id: &str,
    ) -> Option<usize> {
        let entry = directory.get_mut(doc_id)?;
        for &shard in entry.shards.iter().skip(1) {
            self.shards[shard].write_np().replicas.remove(doc_id);
        }
        if entry.shards.len() > 1 {
            self.replicated.fetch_sub(1, Ordering::Relaxed);
        }
        entry.shards.truncate(1);
        entry.serves.store(0, Ordering::Relaxed);
        entry.pinned
    }

    /// Pins `doc_id` to `copies` serving shards (clamped to `[1,
    /// shard_count]`): replicates immediately and re-replicates after every
    /// republish. Fails with [`CoreError::NotFound`] for unknown documents.
    pub fn pin_replicas(&self, doc_id: &str, copies: usize) -> Result<(), CoreError> {
        if !self.contains(doc_id) {
            return Err(CoreError::NotFound {
                doc_id: doc_id.to_owned(),
            });
        }
        let mut directory = self.directory.write_np();
        self.invalidate_locked(&mut directory, doc_id);
        self.replicate_locked(&mut directory, doc_id, copies);
        if let Some(entry) = directory.get_mut(doc_id) {
            entry.pinned = Some(copies);
        }
        Ok(())
    }

    /// Uploads (or replaces) a document on its shard, keeping stored rule
    /// blobs (see [`DspStore::put_document`]).
    pub fn put_document(&self, document: SecureDocument) {
        self.put_document_with(document, false);
    }

    /// Uploads (or replaces) a document, choosing whether stored rule blobs
    /// survive the replacement (see [`DspStore::put_document_with`]).
    ///
    /// Replicas are invalidated **before** the new revision lands (readers
    /// route back to the home shard for the duration), and pinned documents
    /// re-replicate the new revision afterwards — so no clone ever serves a
    /// revision the home shard has abandoned.
    pub fn put_document_with(&self, document: SecureDocument, clear_rules_on_replace: bool) {
        let doc_id = document.header.doc_id.clone();
        let mut directory = self.directory.write_np();
        let pinned = self.invalidate_locked(&mut directory, &doc_id);
        self.shards[self.shard_of(&doc_id)]
            .write_np()
            .store
            .put_document_with(document, clear_rules_on_replace);
        if let Some(copies) = pinned {
            self.replicate_locked(&mut directory, &doc_id, copies);
            if let Some(entry) = directory.get_mut(&doc_id) {
                entry.pinned = Some(copies);
            }
        }
    }

    /// Stores the protected rules of `subject` for `doc_id` — on the home
    /// shard and on every replica, so a routed rule fetch cannot see a blob
    /// older than the home shard's.
    pub fn put_rules(
        &self,
        doc_id: &str,
        subject: &str,
        rules: &ProtectedRules,
    ) -> Result<(), CoreError> {
        let directory = self.directory.read_np();
        self.shards[self.shard_of(doc_id)]
            .write_np()
            .store
            .put_rules(doc_id, subject, rules)?;
        if let Some(entry) = directory.get(doc_id) {
            for &shard in entry.shards.iter().skip(1) {
                if let Some(record) = self.shards[shard].write_np().replicas.get_mut(doc_id) {
                    // Clones share one allocation until a sync diverges them;
                    // `make_mut` copies-on-write for this shard only.
                    Arc::make_mut(record)
                        .rules
                        .insert(subject.to_owned(), rules.encode().into());
                }
            }
        }
        Ok(())
    }

    /// Fetches a document header (counted on the serving shard).
    pub fn fetch_header(&self, doc_id: &str) -> Result<DocumentHeader, CoreError> {
        self.serve(doc_id, 0, |record, stats| serve_header(record, stats, None))
    }

    /// Fetches a document header together with the upload revision it
    /// belongs to, for a session to pin: subsequent `fetch_*_pinned` calls
    /// carrying this revision fail with [`CoreError::StaleRevision`] if the
    /// document is republished mid-session.
    pub fn fetch_header_pinned(&self, doc_id: &str) -> Result<(DocumentHeader, u64), CoreError> {
        self.fetch_header_pinned_salted(doc_id, 0)
    }

    /// Like [`ShardedStore::fetch_header_pinned`], but routed with a caller
    /// `salt` — sessions carry distinct salts
    /// (`crate::DspService::next_session_salt`) so *identical* header
    /// requests from different sessions spread over a hot document's
    /// replicas instead of all queueing on the home copy.
    pub fn fetch_header_pinned_salted(
        &self,
        doc_id: &str,
        salt: u64,
    ) -> Result<(DocumentHeader, u64), CoreError> {
        self.serve(doc_id, salt, |record, stats| {
            serve_header(record, stats, None).map(|header| (header, record.revision))
        })
    }

    /// Fetches one encrypted chunk and its Merkle proof.
    ///
    /// Replicated documents route chunk `i` to copy `(i + 1) % copies` — the
    /// `+ 1` keeps the first chunk off the home copy, which already serves
    /// every header request.
    pub fn fetch_chunk(
        &self,
        doc_id: &str,
        index: u32,
    ) -> Result<(Arc<[u8]>, MerkleProof), CoreError> {
        self.serve(doc_id, u64::from(index) + 1, |record, stats| {
            serve_chunk(record, stats, index, None)
        })
    }

    /// Like [`ShardedStore::fetch_chunk`], but fails with
    /// [`CoreError::StaleRevision`] unless the serving record still has the
    /// session's pinned `revision`.
    pub fn fetch_chunk_pinned(
        &self,
        doc_id: &str,
        index: u32,
        revision: u64,
    ) -> Result<(Arc<[u8]>, MerkleProof), CoreError> {
        self.fetch_chunk_pinned_salted(doc_id, index, revision, 0)
    }

    /// Like [`ShardedStore::fetch_chunk_pinned`], with a per-session routing
    /// `salt` added to the chunk-index spread (see
    /// [`ShardedStore::fetch_header_pinned_salted`]).
    pub fn fetch_chunk_pinned_salted(
        &self,
        doc_id: &str,
        index: u32,
        revision: u64,
        salt: u64,
    ) -> Result<(Arc<[u8]>, MerkleProof), CoreError> {
        self.serve(
            doc_id,
            salt.wrapping_add(u64::from(index) + 1),
            |record, stats| serve_chunk(record, stats, index, Some(revision)),
        )
    }

    /// Fetches the protected rule blob of `subject` for `doc_id`.
    pub fn fetch_rules(&self, doc_id: &str, subject: &str) -> Result<Arc<[u8]>, CoreError> {
        self.serve(doc_id, fnv1a(subject.as_bytes()), |record, stats| {
            serve_rules(record, stats, subject, None)
        })
    }

    /// Like [`ShardedStore::fetch_rules`], but fails with
    /// [`CoreError::StaleRevision`] unless the serving record still has the
    /// session's pinned `revision`.
    pub fn fetch_rules_pinned(
        &self,
        doc_id: &str,
        subject: &str,
        revision: u64,
    ) -> Result<Arc<[u8]>, CoreError> {
        self.fetch_rules_pinned_salted(doc_id, subject, revision, 0)
    }

    /// Like [`ShardedStore::fetch_rules_pinned`], with a per-session routing
    /// `salt` added to the subject-hash spread (see
    /// [`ShardedStore::fetch_header_pinned_salted`]).
    pub fn fetch_rules_pinned_salted(
        &self,
        doc_id: &str,
        subject: &str,
        revision: u64,
        salt: u64,
    ) -> Result<Arc<[u8]>, CoreError> {
        self.serve(
            doc_id,
            salt.wrapping_add(fnv1a(subject.as_bytes())),
            |record, stats| serve_rules(record, stats, subject, Some(revision)),
        )
    }

    /// Merged statistics of every shard.
    pub fn stats(&self) -> ServerStats {
        let mut merged = ServerStats::default();
        for shard in &self.shards {
            merged.merge(&shard.read_np().stats.snapshot());
        }
        merged
    }

    /// Per-shard statistics, indexed by shard (the capacity model reads the
    /// busiest shard off this).
    pub fn shard_stats(&self) -> Vec<ServerStats> {
        self.shards
            .iter()
            .map(|s| s.read_np().stats.snapshot())
            .collect()
    }

    /// Resets the statistics of every shard.
    pub fn reset_stats(&self) {
        for shard in &self.shards {
            shard.write_np().stats.reset();
        }
    }

    /// Upload revision of `doc_id` (`None` when the document is not stored).
    pub fn revision(&self, doc_id: &str) -> Option<u64> {
        self.shards[self.shard_of(doc_id)]
            .read_np()
            .store
            .get(doc_id)
            .map(|record| record.revision)
    }

    /// True when `doc_id` is stored on its home shard.
    pub fn contains(&self, doc_id: &str) -> bool {
        self.revision(doc_id).is_some()
    }

    /// Ids of every stored document, across shards (sorted; replicas are not
    /// inventory and are not listed).
    pub fn document_ids(&self) -> Vec<String> {
        let mut ids: Vec<String> = self
            .shards
            .iter()
            .flat_map(|s| s.read_np().store.document_ids())
            .collect();
        ids.sort();
        ids
    }

    /// Number of stored documents, across shards (replicas not counted).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read_np().store.len()).sum()
    }

    /// True when no shard stores any document.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total ciphertext bytes stored, across shards (replicas not counted).
    pub fn stored_bytes(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read_np().store.stored_bytes())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdds_core::rule::RuleSet;
    use sdds_core::secdoc::SecureDocumentBuilder;
    use sdds_crypto::SecretKey;
    use sdds_xml::generator::{self, GeneratorConfig, HospitalProfile};

    fn document(id: &str) -> SecureDocument {
        let doc = generator::hospital(
            &HospitalProfile {
                patients: 2,
                ..HospitalProfile::default()
            },
            &GeneratorConfig::default(),
        );
        SecureDocumentBuilder::new(id, SecretKey::derive(b"s", "k")).build(&doc)
    }

    fn sealed_rules(expr: &str) -> ProtectedRules {
        ProtectedRules::seal(
            &RuleSet::parse(expr).unwrap(),
            &SecretKey::derive(b"s", "rules"),
        )
    }

    #[test]
    fn documents_spread_over_shards_and_serve_like_one_store() {
        let store = ShardedStore::new(4);
        assert_eq!(store.shard_count(), 4);
        assert!(store.is_empty());
        for i in 0..16 {
            store.put_document(document(&format!("doc-{i}")));
        }
        assert_eq!(store.len(), 16);
        assert_eq!(store.document_ids().len(), 16);
        assert!(store.stored_bytes() > 0);
        // At least two distinct shards hold documents (FNV spreads 16 ids).
        let occupied: Vec<usize> = (0..16)
            .map(|i| store.shard_of(&format!("doc-{i}")))
            .collect();
        assert!(occupied.iter().any(|&s| s != occupied[0]));

        let header = store.fetch_header("doc-3").unwrap();
        let (chunk, proof) = store.fetch_chunk("doc-3", 0).unwrap();
        proof.verify(&chunk, &header.merkle_root).unwrap();
        assert!(store.fetch_header("doc-99").is_err());
        assert!(store.fetch_chunk("doc-3", 9999).is_err());
    }

    #[test]
    fn missing_objects_get_typed_errors() {
        let store = ShardedStore::new(2);
        store.put_document(document("here"));
        assert!(matches!(
            store.fetch_header("gone"),
            Err(CoreError::NotFound { doc_id }) if doc_id == "gone"
        ));
        assert!(matches!(
            store.fetch_rules("here", "stranger"),
            Err(CoreError::NoRulesForSubject { doc_id, subject })
                if doc_id == "here" && subject == "stranger"
        ));
    }

    #[test]
    fn pinned_fetches_reject_a_republished_revision() {
        let store = ShardedStore::new(2);
        store.put_document(document("doc"));
        let (header, revision) = store.fetch_header_pinned("doc").unwrap();
        assert_eq!(revision, 0);
        let (chunk, proof) = store.fetch_chunk_pinned("doc", 0, revision).unwrap();
        proof.verify(&chunk, &header.merkle_root).unwrap();

        store.put_document(document("doc"));
        assert!(matches!(
            store.fetch_chunk_pinned("doc", 0, revision),
            Err(CoreError::StaleRevision {
                pinned: 0,
                current: 1,
                ..
            })
        ));
        // A fresh pin serves the new revision.
        let (_, revision) = store.fetch_header_pinned("doc").unwrap();
        assert_eq!(revision, 1);
        assert!(store.fetch_chunk_pinned("doc", 0, revision).is_ok());
    }

    #[test]
    fn per_shard_stats_merge_on_read() {
        let store = ShardedStore::new(4);
        for i in 0..8 {
            store.put_document(document(&format!("doc-{i}")));
        }
        store
            .put_rules("doc-0", "doctor", &sealed_rules("+, doctor, //patient"))
            .unwrap();

        for i in 0..8 {
            store.fetch_header(&format!("doc-{i}")).unwrap();
            store.fetch_chunk(&format!("doc-{i}"), 0).unwrap();
        }
        let blob = store.fetch_rules("doc-0", "doctor").unwrap();

        let merged = store.stats();
        assert_eq!(merged.requests, 17);
        assert_eq!(merged.chunks_served, 8);
        assert_eq!(merged.rule_blobs_served, 1);
        assert_eq!(merged.rule_bytes_served, blob.len());
        // The merge really is the sum of the per-shard counters.
        let per_shard = store.shard_stats();
        assert_eq!(per_shard.len(), 4);
        assert_eq!(
            per_shard.iter().map(|s| s.requests).sum::<usize>(),
            merged.requests
        );
        assert_eq!(
            per_shard.iter().map(|s| s.bytes_served).sum::<usize>(),
            merged.bytes_served
        );

        store.reset_stats();
        assert_eq!(store.stats(), ServerStats::default());
    }

    #[test]
    fn zero_shards_clamps_to_one() {
        let store = ShardedStore::new(0);
        assert_eq!(store.shard_count(), 1);
        store.put_document(document("only"));
        assert_eq!(store.shard_of("only"), 0);
        assert!(store.fetch_header("only").is_ok());
    }

    #[test]
    fn pinned_replicas_spread_serving_over_shards() {
        let store = ShardedStore::new(8);
        store.put_document(document("hot"));
        assert_eq!(store.replica_shards("hot").len(), 1);
        store.pin_replicas("hot", 4).unwrap();
        let serving = store.replica_shards("hot");
        assert_eq!(serving.len(), 4);
        assert_eq!(serving[0], store.shard_of("hot"));

        let header = store.fetch_header("hot").unwrap();
        for index in 0..header.chunk_count {
            let (chunk, proof) = store.fetch_chunk("hot", index).unwrap();
            proof.verify(&chunk, &header.merkle_root).unwrap();
        }
        // More than one shard accounted traffic for the single document.
        let active = store
            .shard_stats()
            .iter()
            .filter(|s| s.requests > 0)
            .count();
        assert!(active > 1, "replication must spread serving, got {active}");
        // The spread is deterministic: chunk index picks the copy.
        let first_round = store.shard_stats();
        store.reset_stats();
        store.fetch_header("hot").unwrap();
        for index in 0..header.chunk_count {
            store.fetch_chunk("hot", index).unwrap();
        }
        assert_eq!(store.shard_stats(), first_round);

        // Replicas are not inventory.
        assert_eq!(store.len(), 1);
        assert_eq!(store.document_ids(), vec!["hot"]);

        assert!(matches!(
            store.pin_replicas("gone", 4),
            Err(CoreError::NotFound { .. })
        ));
    }

    #[test]
    fn session_salts_spread_identical_header_fetches_over_replicas() {
        let store = ShardedStore::new(8);
        store.put_document(document("hot"));
        store.pin_replicas("hot", 4).unwrap();
        let serving = store.replica_shards("hot");
        assert_eq!(serving.len(), 4);

        // Unsalted: every identical header fetch queues on the same copy.
        for _ in 0..16 {
            store.fetch_header_pinned("hot").unwrap();
        }
        let unsalted = store
            .shard_stats()
            .iter()
            .filter(|s| s.requests > 0)
            .count();
        assert_eq!(unsalted, 1, "salt 0 always routes to one copy");

        // Salted per session: the same request spreads over every copy.
        store.reset_stats();
        for salt in 0..16u64 {
            store.fetch_header_pinned_salted("hot", salt).unwrap();
        }
        let stats = store.shard_stats();
        let active: Vec<usize> = serving.iter().map(|&shard| stats[shard].requests).collect();
        assert!(
            active.iter().all(|&requests| requests > 0),
            "16 salts over 4 copies must hit every copy, got {active:?}"
        );
        assert_eq!(active.iter().sum::<usize>(), 16);
    }

    #[test]
    fn republish_invalidates_replicas_and_repins_the_new_revision() {
        let store = ShardedStore::new(4);
        store.put_document(document("hot"));
        store.pin_replicas("hot", 4).unwrap();
        assert_eq!(store.replica_shards("hot").len(), 4);

        store.put_document(document("hot"));
        assert_eq!(store.revision("hot"), Some(1));
        // Pinned documents re-replicate the new revision...
        assert_eq!(store.replica_shards("hot").len(), 4);
        // ...and every copy serves it: a pinned fetch at the new revision
        // succeeds whichever copy the route picks.
        for index in 0..4 {
            assert!(store.fetch_chunk_pinned("hot", index, 1).is_ok());
        }
        // The old pin is stale on every copy.
        for index in 0..4 {
            assert!(matches!(
                store.fetch_chunk_pinned("hot", index, 0),
                Err(CoreError::StaleRevision { .. })
            ));
        }
    }

    #[test]
    fn rule_blob_sync_reaches_replicas() {
        let store = ShardedStore::new(4);
        store.put_document(document("hot"));
        store.pin_replicas("hot", 4).unwrap();
        // Blobs are stored *after* replication here: the sync must reach
        // every copy, or subjects provisioned late would see NoRules on
        // fetches routed to a replica.
        let sealed = sealed_rules("+, doctor, //patient");
        let subjects: Vec<String> = (0..12).map(|i| format!("subject-{i}")).collect();
        for subject in &subjects {
            store.put_rules("hot", subject, &sealed).unwrap();
        }
        for subject in &subjects {
            assert_eq!(
                store.fetch_rules("hot", subject).unwrap()[..],
                sealed.encode()[..],
                "routed rule fetch for `{subject}` must see the synced blob"
            );
        }
        // The subject hash really routed rule traffic to more than one copy.
        let serving_shards = store
            .shard_stats()
            .iter()
            .filter(|s| s.rule_blobs_served > 0)
            .count();
        assert!(serving_shards > 1, "got {serving_shards} serving shard(s)");
    }

    #[test]
    fn hot_threshold_replicates_automatically() {
        let store = ShardedStore::new(4).with_hot_policy(HotPolicy {
            threshold: 5,
            replicas: 3,
        });
        assert_eq!(
            store.hot_policy(),
            Some(HotPolicy {
                threshold: 5,
                replicas: 3
            })
        );
        store.put_document(document("warm"));
        for _ in 0..4 {
            store.fetch_header("warm").unwrap();
        }
        assert_eq!(store.replica_shards("warm").len(), 1, "below threshold");
        store.fetch_header("warm").unwrap();
        assert_eq!(
            store.replica_shards("warm").len(),
            3,
            "crossing the threshold replicates"
        );
        // Republishing resets the count and drops the (unpinned) clones.
        store.put_document(document("warm"));
        assert_eq!(store.replica_shards("warm").len(), 1);
    }

    #[test]
    fn zero_threshold_replicates_on_the_first_serve() {
        let store = ShardedStore::new(4).with_hot_policy(HotPolicy {
            threshold: 0,
            replicas: 2,
        });
        store.put_document(document("eager"));
        store.fetch_header("eager").unwrap();
        assert_eq!(store.replica_shards("eager").len(), 2);
    }

    #[test]
    fn explicit_pins_are_not_downgraded_by_the_hot_threshold() {
        let store = ShardedStore::new(8).with_hot_policy(HotPolicy {
            threshold: 3,
            replicas: 2,
        });
        store.put_document(document("pinned"));
        store.pin_replicas("pinned", 6).unwrap();
        // Serving far past the threshold must leave the wider pin in place.
        for _ in 0..10 {
            store.fetch_header("pinned").unwrap();
        }
        assert_eq!(store.replica_shards("pinned").len(), 6);
    }
}
