//! Pull-mode request API of the DSP.
//!
//! The terminal proxy fetches the document header, then individual encrypted
//! chunks (with their Merkle proofs) *on demand of the card*, and the protected
//! rule blob of its subject. The server counts every byte it serves — the
//! transfer-volume results of experiments E2 and E5 are read off these
//! counters on one side and off the card ledger on the other.
//!
//! Since the facade redesign there is exactly **one** serving code path in the
//! workspace: the sharded [`crate::service::DspService`]. The single-tenant
//! [`DspServer`] kept here is a thin convenience wrapper over a one-shard
//! service — it cannot drift from the sharded path because it *is* the sharded
//! path.

use sdds_obs::{families, Counter, Registry};
use sdds_sync::sync::Arc;

use sdds_core::secdoc::{DocumentHeader, SecureDocument};
use sdds_core::session::ProtectedRules;
use sdds_core::CoreError;
use sdds_crypto::merkle::MerkleProof;

use crate::service::DspService;

/// Serving statistics of a DSP (one front-end, or one shard of the
/// [`crate::service::ShardedStore`]).
///
/// Every served payload is counted through exactly one of the `record_*`
/// methods below, inside the shard that served it — so `bytes_served` counts
/// headers, chunks + proofs and rule blobs each exactly once, and merging
/// per-shard statistics cannot double- or under-count any class of payload.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Requests served.
    pub requests: usize,
    /// Payload bytes served (headers, chunks, proofs, rule blobs).
    pub bytes_served: usize,
    /// Chunk requests served.
    pub chunks_served: usize,
    /// Rule-blob requests served.
    pub rule_blobs_served: usize,
    /// Bytes of protected rule blobs served (a subset of `bytes_served`).
    pub rule_bytes_served: usize,
}

impl ServerStats {
    /// Records one served document header of `bytes` payload.
    pub fn record_header(&mut self, bytes: usize) {
        self.requests += 1;
        self.bytes_served += bytes;
    }

    /// Records one served chunk (ciphertext + proof) of `bytes` payload.
    pub fn record_chunk(&mut self, bytes: usize) {
        self.requests += 1;
        self.bytes_served += bytes;
        self.chunks_served += 1;
    }

    /// Records one served protected rule blob of `bytes` payload.
    pub fn record_rules(&mut self, bytes: usize) {
        self.requests += 1;
        self.bytes_served += bytes;
        self.rule_blobs_served += 1;
        self.rule_bytes_served += bytes;
    }

    /// Merges the counters of another server (or shard) into this one.
    pub fn merge(&mut self, other: &ServerStats) {
        self.requests += other.requests;
        self.bytes_served += other.bytes_served;
        self.chunks_served += other.chunks_served;
        self.rule_blobs_served += other.rule_blobs_served;
        self.rule_bytes_served += other.rule_bytes_served;
    }
}

/// The live, shared form of [`ServerStats`]: one relaxed [`sdds_obs`]
/// counter per field, so serving accounting has exactly one implementation
/// and the same cells surface in [`crate::service::DspService::obs_snapshot`].
///
/// Serving counters are the only thing a DSP read mutates, so keeping them in
/// atomics is what lets every `fetch_*` run under a shard's **read** lock —
/// same-shard readers proceed concurrently, and only writes (`put_document`,
/// rule-blob sync, stats reset) take the write lock. Relaxed ordering is
/// enough: the counters are independent monotonic tallies, never used to
/// synchronise other memory, and [`AtomicServerStats::snapshot`] is read
/// either under the shard's write lock (reset) or after the traffic of
/// interest quiesced (reporting). Clones share the underlying cells.
#[derive(Debug, Clone, Default)]
pub struct AtomicServerStats {
    requests: Counter,
    bytes_served: Counter,
    chunks_served: Counter,
    rule_blobs_served: Counter,
    rule_bytes_served: Counter,
}

impl AtomicServerStats {
    /// Stats whose counters are registered in `registry` under the
    /// `dsp.serve.*` families, labelled with the owning shard (`"shard=3"`),
    /// so a registry snapshot reports them without a second tally. The
    /// unlabelled [`Default`] form stays detached — for tests and
    /// stand-alone stores.
    pub fn registered(registry: &Registry, label: &str) -> Self {
        AtomicServerStats {
            requests: registry.counter_with(families::SERVE_REQUESTS, Some(label)),
            bytes_served: registry.counter_with(families::SERVE_BYTES, Some(label)),
            chunks_served: registry.counter_with(families::SERVE_CHUNKS, Some(label)),
            rule_blobs_served: registry.counter_with(families::SERVE_RULE_BLOBS, Some(label)),
            rule_bytes_served: registry.counter_with(families::SERVE_RULE_BYTES, Some(label)),
        }
    }

    /// Records one served document header of `bytes` payload.
    pub fn record_header(&self, bytes: usize) {
        self.requests.inc();
        self.bytes_served.add(bytes as u64);
    }

    /// Records one served chunk (ciphertext + proof) of `bytes` payload.
    pub fn record_chunk(&self, bytes: usize) {
        self.requests.inc();
        self.bytes_served.add(bytes as u64);
        self.chunks_served.inc();
    }

    /// Records one served protected rule blob of `bytes` payload.
    pub fn record_rules(&self, bytes: usize) {
        self.requests.inc();
        self.bytes_served.add(bytes as u64);
        self.rule_blobs_served.inc();
        self.rule_bytes_served.add(bytes as u64);
    }

    /// A plain-value snapshot of the counters.
    pub fn snapshot(&self) -> ServerStats {
        ServerStats {
            requests: self.requests.get() as usize,
            bytes_served: self.bytes_served.get() as usize,
            chunks_served: self.chunks_served.get() as usize,
            rule_blobs_served: self.rule_blobs_served.get() as usize,
            rule_bytes_served: self.rule_bytes_served.get() as usize,
        }
    }

    /// Zeroes every counter (call under the owning shard's write lock so no
    /// concurrent serve is torn across the reset).
    pub fn reset(&self) {
        self.requests.reset();
        self.bytes_served.reset();
        self.chunks_served.reset();
        self.rule_blobs_served.reset();
        self.rule_bytes_served.reset();
    }
}

/// The single-tenant DSP front-end: a one-shard [`DspService`].
#[derive(Debug)]
pub struct DspServer {
    service: DspService,
}

impl Default for DspServer {
    fn default() -> Self {
        DspServer::new()
    }
}

impl DspServer {
    /// Creates a server over an empty one-shard store.
    pub fn new() -> Self {
        DspServer {
            service: DspService::new(1),
        }
    }

    /// The underlying (one-shard) service.
    pub fn service(&self) -> &DspService {
        &self.service
    }

    /// Uploads (or replaces) a document, keeping stored rule blobs.
    pub fn put_document(&self, document: SecureDocument) {
        self.service.put_document(document);
    }

    /// Uploads (or replaces) a document, choosing whether stored rule blobs
    /// survive the replacement (see
    /// [`crate::store::DspStore::put_document_with`]).
    pub fn put_document_with(&self, document: SecureDocument, clear_rules_on_replace: bool) {
        self.service
            .put_document_with(document, clear_rules_on_replace);
    }

    /// Stores the protected rules of `subject` for `doc_id`.
    pub fn put_rules(
        &self,
        doc_id: &str,
        subject: &str,
        rules: &ProtectedRules,
    ) -> Result<(), CoreError> {
        self.service.put_rules(doc_id, subject, rules)
    }

    /// Serving statistics.
    pub fn stats(&self) -> ServerStats {
        self.service.stats()
    }

    /// Resets the serving statistics (between experiment runs).
    pub fn reset_stats(&self) {
        self.service.reset_stats();
    }

    /// Upload revision of a stored document (`None` if unknown).
    pub fn revision(&self, doc_id: &str) -> Option<u64> {
        self.service.revision(doc_id)
    }

    /// True when `doc_id` is stored.
    pub fn contains(&self, doc_id: &str) -> bool {
        self.service.contains(doc_id)
    }

    /// Total ciphertext bytes stored.
    pub fn stored_bytes(&self) -> usize {
        self.service.store().stored_bytes()
    }

    /// Fetches a document header.
    pub fn fetch_header(&self, doc_id: &str) -> Result<DocumentHeader, CoreError> {
        self.service.fetch_header(doc_id)
    }

    /// Fetches one encrypted chunk and its Merkle proof.
    pub fn fetch_chunk(
        &self,
        doc_id: &str,
        index: u32,
    ) -> Result<(Arc<[u8]>, MerkleProof), CoreError> {
        self.service.fetch_chunk(doc_id, index)
    }

    /// Fetches the protected rule blob of `subject`.
    pub fn fetch_rules(&self, doc_id: &str, subject: &str) -> Result<Arc<[u8]>, CoreError> {
        self.service.fetch_rules(doc_id, subject)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdds_core::rule::RuleSet;
    use sdds_core::secdoc::SecureDocumentBuilder;
    use sdds_core::session::ProtectedRules;
    use sdds_crypto::SecretKey;
    use sdds_xml::generator::{self, GeneratorConfig, HospitalProfile};

    fn server() -> DspServer {
        let server = DspServer::new();
        let doc = generator::hospital(
            &HospitalProfile {
                patients: 3,
                ..HospitalProfile::default()
            },
            &GeneratorConfig::default(),
        );
        let secure =
            SecureDocumentBuilder::new("folder", SecretKey::derive(b"s", "doc")).build(&doc);
        server.put_document(secure);
        let rules = RuleSet::parse("+, doctor, //patient").unwrap();
        let sealed = ProtectedRules::seal(&rules, &SecretKey::derive(b"s", "rules"));
        server.put_rules("folder", "doctor", &sealed).unwrap();
        server
    }

    #[test]
    fn single_tenant_server_is_a_one_shard_service() {
        let s = server();
        assert_eq!(s.service().shard_count(), 1);
        assert_eq!(s.revision("folder"), Some(0));
        assert!(s.contains("folder"));
        assert!(!s.contains("nope"));
        assert!(s.stored_bytes() > 0);
    }

    #[test]
    fn serves_headers_chunks_and_rules_with_accounting() {
        let s = server();
        let header = s.fetch_header("folder").unwrap();
        assert_eq!(header.doc_id, "folder");
        let (chunk, proof) = s.fetch_chunk("folder", 0).unwrap();
        proof.verify(&chunk, &header.merkle_root).unwrap();
        let rules = s.fetch_rules("folder", "doctor").unwrap();
        assert!(!rules.is_empty());
        let stats = s.stats();
        assert_eq!(stats.requests, 3);
        assert_eq!(stats.chunks_served, 1);
        assert!(stats.bytes_served > chunk.len());
        s.reset_stats();
        assert_eq!(s.stats().requests, 0);
    }

    #[test]
    fn rule_blob_bytes_are_counted_exactly_once() {
        let s = server();
        let blob = s.fetch_rules("folder", "doctor").unwrap();
        let stats = s.stats();
        assert_eq!(stats.rule_blobs_served, 1);
        assert_eq!(stats.rule_bytes_served, blob.len());
        // Rule bytes are a subset of bytes_served, not an addition to it.
        assert_eq!(stats.bytes_served, blob.len());
        let (chunk, proof) = s.fetch_chunk("folder", 0).unwrap();
        assert_eq!(
            s.stats().bytes_served,
            blob.len() + chunk.len() + proof.encode().len()
        );
        assert_eq!(s.stats().rule_bytes_served, blob.len());
    }

    #[test]
    fn stats_merge_counts_every_class_once() {
        // Two "shards" serving disjoint traffic must merge to the same totals
        // a single server accumulating both streams would report.
        let mut a = ServerStats::default();
        let mut b = ServerStats::default();
        let mut whole = ServerStats::default();
        for (stats, bytes) in [(&mut a, 100), (&mut b, 200)] {
            stats.record_header(10);
            stats.record_chunk(bytes);
            stats.record_rules(30);
            whole.record_header(10);
            whole.record_chunk(bytes);
            whole.record_rules(30);
        }
        let mut merged = ServerStats::default();
        merged.merge(&a);
        merged.merge(&b);
        assert_eq!(merged, whole);
        assert_eq!(merged.requests, 6);
        assert_eq!(merged.bytes_served, 10 + 100 + 30 + 10 + 200 + 30);
        assert_eq!(merged.chunks_served, 2);
        assert_eq!(merged.rule_blobs_served, 2);
        assert_eq!(merged.rule_bytes_served, 60);
        // Merging an empty shard is the identity.
        let before = merged;
        merged.merge(&ServerStats::default());
        assert_eq!(merged, before);
    }

    #[test]
    fn atomic_stats_snapshot_matches_plain_recording() {
        let atomic = AtomicServerStats::default();
        let mut plain = ServerStats::default();
        atomic.record_header(10);
        plain.record_header(10);
        atomic.record_chunk(100);
        plain.record_chunk(100);
        atomic.record_rules(30);
        plain.record_rules(30);
        assert_eq!(atomic.snapshot(), plain);
        atomic.reset();
        assert_eq!(atomic.snapshot(), ServerStats::default());
    }

    #[test]
    fn unknown_objects_are_reported() {
        let s = server();
        assert!(s.fetch_header("nope").is_err());
        assert!(s.fetch_chunk("folder", 9999).is_err());
        assert!(s.fetch_rules("folder", "stranger").is_err());
        assert!(s.contains("folder"));
    }
}
