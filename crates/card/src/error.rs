//! Error type of the SOE emulator.

use std::fmt;

/// Errors raised by the card runtime and its resource budgets.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CardError {
    /// The secure working memory budget would be exceeded.
    RamExceeded {
        /// Bytes requested by the allocation.
        requested: usize,
        /// Bytes currently in use.
        in_use: usize,
        /// Total budget.
        budget: usize,
    },
    /// The secure stable storage (EEPROM) budget would be exceeded.
    EepromExceeded {
        /// Bytes requested.
        requested: usize,
        /// Bytes currently in use.
        in_use: usize,
        /// Total budget.
        budget: usize,
    },
    /// An APDU payload exceeds the maximum the channel supports.
    ApduTooLong {
        /// Payload length.
        len: usize,
        /// Maximum supported length.
        max: usize,
    },
    /// A malformed APDU was received.
    MalformedApdu {
        /// Description of the problem.
        message: String,
    },
    /// The applet refused the command (wrong state, missing key, tampered
    /// input...). Carries the ISO 7816 status word to return.
    Refused {
        /// Status word to return to the terminal.
        status: u16,
        /// Human readable reason.
        reason: String,
    },
}

impl fmt::Display for CardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CardError::RamExceeded {
                requested,
                in_use,
                budget,
            } => write!(
                f,
                "secure RAM exceeded: requested {requested} B with {in_use}/{budget} B in use"
            ),
            CardError::EepromExceeded {
                requested,
                in_use,
                budget,
            } => write!(
                f,
                "EEPROM exceeded: requested {requested} B with {in_use}/{budget} B in use"
            ),
            CardError::ApduTooLong { len, max } => {
                write!(f, "APDU payload of {len} B exceeds the maximum of {max} B")
            }
            CardError::MalformedApdu { message } => write!(f, "malformed APDU: {message}"),
            CardError::Refused { status, reason } => {
                write!(f, "command refused (SW=0x{status:04X}): {reason}")
            }
        }
    }
}

impl std::error::Error for CardError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_contains_key_figures() {
        let e = CardError::RamExceeded {
            requested: 128,
            in_use: 900,
            budget: 1024,
        };
        let s = e.to_string();
        assert!(s.contains("128") && s.contains("900") && s.contains("1024"));

        let e = CardError::Refused {
            status: 0x6982,
            reason: "no key".into(),
        };
        assert!(e.to_string().contains("6982"));
        assert!(CardError::ApduTooLong { len: 300, max: 255 }
            .to_string()
            .contains("300"));
        assert!(CardError::MalformedApdu {
            message: "short".into()
        }
        .to_string()
        .contains("short"));
        assert!(CardError::EepromExceeded {
            requested: 1,
            in_use: 2,
            budget: 3
        }
        .to_string()
        .contains("EEPROM"));
    }
}
