//! E5 — full pull-mode session (fetch, verify, decrypt, evaluate).
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sdds_bench::workloads;
use sdds_xml::generator::{Corpus, GeneratorConfig};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_latency_breakdown");
    group.sample_size(10);
    for corpus in [Corpus::Hospital, Corpus::Catalog] {
        let doc = corpus.generate(1_500, &GeneratorConfig::default());
        let secure = workloads::secure(&doc, 128, 32);
        let rules = workloads::medical_rules();
        group.bench_with_input(
            BenchmarkId::from_parameter(corpus.name()),
            &corpus,
            |b, _| b.iter(|| workloads::run_secure(&secure, &rules, "doctor", None, true)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
