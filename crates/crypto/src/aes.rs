//! AES-128 block cipher (FIPS-197), straightforward table-free implementation.
//!
//! The implementation computes the S-box lookups from a precomputed 256-byte
//! table (generated once, at first use, from the multiplicative inverse in
//! GF(2^8)) and performs `MixColumns` with explicit GF multiplications. It is
//! deliberately simple: the SOE emulator charges decryption per byte, so the
//! constant factor of this software implementation does not influence the
//! relative results of the experiments.

/// Block size in bytes.
pub const BLOCK_SIZE: usize = 16;
/// Key size in bytes (AES-128).
pub const KEY_SIZE: usize = 16;

const ROUNDS: usize = 10;

/// Multiplies two elements of GF(2^8) modulo the AES polynomial x^8+x^4+x^3+x+1.
fn gf_mul(mut a: u8, mut b: u8) -> u8 {
    let mut p = 0u8;
    for _ in 0..8 {
        if b & 1 != 0 {
            p ^= a;
        }
        let hi = a & 0x80;
        a <<= 1;
        if hi != 0 {
            a ^= 0x1B;
        }
        b >>= 1;
    }
    p
}

/// Computes the AES S-box at start-up.
fn build_sbox() -> [u8; 256] {
    // Multiplicative inverse table via brute force (runs once).
    let mut inv = [0u8; 256];
    for a in 1..=255u16 {
        for b in 1..=255u16 {
            if gf_mul(a as u8, b as u8) == 1 {
                inv[a as usize] = b as u8;
                break;
            }
        }
    }
    let mut sbox = [0u8; 256];
    for i in 0..256usize {
        let x = inv[i];
        // Affine transformation.
        let mut y = x;
        let mut res = x;
        for _ in 0..4 {
            y = y.rotate_left(1);
            res ^= y;
        }
        sbox[i] = res ^ 0x63;
    }
    sbox
}

fn build_inv_sbox(sbox: &[u8; 256]) -> [u8; 256] {
    let mut inv = [0u8; 256];
    for (i, &v) in sbox.iter().enumerate() {
        inv[v as usize] = i as u8;
    }
    inv
}

/// Lazily initialised S-box pair shared by all cipher instances.
fn sboxes() -> &'static ([u8; 256], [u8; 256]) {
    use std::sync::OnceLock;
    static SBOXES: OnceLock<([u8; 256], [u8; 256])> = OnceLock::new();
    SBOXES.get_or_init(|| {
        let sbox = build_sbox();
        let inv = build_inv_sbox(&sbox);
        (sbox, inv)
    })
}

/// An AES-128 cipher with an expanded key schedule.
#[derive(Clone)]
pub struct Aes128 {
    round_keys: [[u8; 16]; ROUNDS + 1],
}

// taint: redacted — prints a fixed placeholder, never the round keys.
impl std::fmt::Debug for Aes128 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print key material.
        f.write_str("Aes128 {{ <key schedule redacted> }}")
    }
}

impl Aes128 {
    /// Expands `key` into the round-key schedule.
    pub fn new(key: &[u8; KEY_SIZE]) -> Self {
        let (sbox, _) = sboxes();
        let mut w = [[0u8; 4]; 4 * (ROUNDS + 1)];
        for i in 0..4 {
            w[i] = [key[4 * i], key[4 * i + 1], key[4 * i + 2], key[4 * i + 3]];
        }
        let mut rcon = 1u8;
        for i in 4..4 * (ROUNDS + 1) {
            let mut temp = w[i - 1];
            if i % 4 == 0 {
                temp.rotate_left(1);
                for b in temp.iter_mut() {
                    *b = sbox[*b as usize];
                }
                temp[0] ^= rcon;
                rcon = gf_mul(rcon, 2);
            }
            for j in 0..4 {
                w[i][j] = w[i - 4][j] ^ temp[j];
            }
        }
        let mut round_keys = [[0u8; 16]; ROUNDS + 1];
        for (r, rk) in round_keys.iter_mut().enumerate() {
            for c in 0..4 {
                rk[4 * c..4 * c + 4].copy_from_slice(&w[4 * r + c]);
            }
        }
        Aes128 { round_keys }
    }

    fn add_round_key(state: &mut [u8; 16], rk: &[u8; 16]) {
        for (s, k) in state.iter_mut().zip(rk.iter()) {
            *s ^= *k;
        }
    }

    fn sub_bytes(state: &mut [u8; 16], table: &[u8; 256]) {
        for b in state.iter_mut() {
            *b = table[*b as usize];
        }
    }

    // The state is stored column-major: state[4*c + r] is row r, column c.
    fn shift_rows(state: &mut [u8; 16]) {
        let s = *state;
        for r in 1..4 {
            for c in 0..4 {
                state[4 * c + r] = s[4 * ((c + r) % 4) + r];
            }
        }
    }

    fn inv_shift_rows(state: &mut [u8; 16]) {
        let s = *state;
        for r in 1..4 {
            for c in 0..4 {
                state[4 * ((c + r) % 4) + r] = s[4 * c + r];
            }
        }
    }

    fn mix_columns(state: &mut [u8; 16]) {
        for c in 0..4 {
            let col = [
                state[4 * c],
                state[4 * c + 1],
                state[4 * c + 2],
                state[4 * c + 3],
            ];
            state[4 * c] = gf_mul(col[0], 2) ^ gf_mul(col[1], 3) ^ col[2] ^ col[3];
            state[4 * c + 1] = col[0] ^ gf_mul(col[1], 2) ^ gf_mul(col[2], 3) ^ col[3];
            state[4 * c + 2] = col[0] ^ col[1] ^ gf_mul(col[2], 2) ^ gf_mul(col[3], 3);
            state[4 * c + 3] = gf_mul(col[0], 3) ^ col[1] ^ col[2] ^ gf_mul(col[3], 2);
        }
    }

    fn inv_mix_columns(state: &mut [u8; 16]) {
        for c in 0..4 {
            let col = [
                state[4 * c],
                state[4 * c + 1],
                state[4 * c + 2],
                state[4 * c + 3],
            ];
            state[4 * c] =
                gf_mul(col[0], 14) ^ gf_mul(col[1], 11) ^ gf_mul(col[2], 13) ^ gf_mul(col[3], 9);
            state[4 * c + 1] =
                gf_mul(col[0], 9) ^ gf_mul(col[1], 14) ^ gf_mul(col[2], 11) ^ gf_mul(col[3], 13);
            state[4 * c + 2] =
                gf_mul(col[0], 13) ^ gf_mul(col[1], 9) ^ gf_mul(col[2], 14) ^ gf_mul(col[3], 11);
            state[4 * c + 3] =
                gf_mul(col[0], 11) ^ gf_mul(col[1], 13) ^ gf_mul(col[2], 9) ^ gf_mul(col[3], 14);
        }
    }

    /// Encrypts one 16-byte block in place.
    // taint: sink — a cleartext block goes in; only ciphertext remains.
    pub fn encrypt_block(&self, block: &mut [u8; BLOCK_SIZE]) {
        let (sbox, _) = sboxes();
        Self::add_round_key(block, &self.round_keys[0]);
        for round in 1..ROUNDS {
            Self::sub_bytes(block, sbox);
            Self::shift_rows(block);
            Self::mix_columns(block);
            Self::add_round_key(block, &self.round_keys[round]);
        }
        Self::sub_bytes(block, sbox);
        Self::shift_rows(block);
        Self::add_round_key(block, &self.round_keys[ROUNDS]);
    }

    /// Decrypts one 16-byte block in place.
    // taint: source — restores the cleartext block inside the SOE.
    pub fn decrypt_block(&self, block: &mut [u8; BLOCK_SIZE]) {
        let (_, inv_sbox) = sboxes();
        Self::add_round_key(block, &self.round_keys[ROUNDS]);
        for round in (1..ROUNDS).rev() {
            Self::inv_shift_rows(block);
            Self::sub_bytes(block, inv_sbox);
            Self::add_round_key(block, &self.round_keys[round]);
            Self::inv_mix_columns(block);
        }
        Self::inv_shift_rows(block);
        Self::sub_bytes(block, inv_sbox);
        Self::add_round_key(block, &self.round_keys[0]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fips197_appendix_b_vector() {
        // FIPS-197 Appendix B example.
        let key: [u8; 16] = [
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
            0x4f, 0x3c,
        ];
        let mut block: [u8; 16] = [
            0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d, 0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37,
            0x07, 0x34,
        ];
        let expected: [u8; 16] = [
            0x39, 0x25, 0x84, 0x1d, 0x02, 0xdc, 0x09, 0xfb, 0xdc, 0x11, 0x85, 0x97, 0x19, 0x6a,
            0x0b, 0x32,
        ];
        let cipher = Aes128::new(&key);
        cipher.encrypt_block(&mut block);
        assert_eq!(block, expected);
        cipher.decrypt_block(&mut block);
        assert_eq!(
            block,
            [
                0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d, 0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37,
                0x07, 0x34
            ]
        );
    }

    #[test]
    fn fips197_appendix_c1_vector() {
        // FIPS-197 Appendix C.1 (AES-128 known answer test).
        let key: [u8; 16] = [
            0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d,
            0x0e, 0x0f,
        ];
        let mut block: [u8; 16] = [
            0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd,
            0xee, 0xff,
        ];
        let expected: [u8; 16] = [
            0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30, 0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4,
            0xc5, 0x5a,
        ];
        let cipher = Aes128::new(&key);
        cipher.encrypt_block(&mut block);
        assert_eq!(block, expected);
    }

    #[test]
    fn encrypt_decrypt_roundtrip_many_blocks() {
        let cipher = Aes128::new(&[7u8; 16]);
        for i in 0..64u8 {
            let mut block = [i; 16];
            let original = block;
            cipher.encrypt_block(&mut block);
            assert_ne!(block, original);
            cipher.decrypt_block(&mut block);
            assert_eq!(block, original);
        }
    }

    #[test]
    fn different_keys_produce_different_ciphertexts() {
        let c1 = Aes128::new(&[1u8; 16]);
        let c2 = Aes128::new(&[2u8; 16]);
        let mut b1 = [0u8; 16];
        let mut b2 = [0u8; 16];
        c1.encrypt_block(&mut b1);
        c2.encrypt_block(&mut b2);
        assert_ne!(b1, b2);
    }

    #[test]
    fn debug_does_not_leak_key_material() {
        let c = Aes128::new(&[0xAB; 16]);
        let dbg = format!("{c:?}");
        assert!(dbg.contains("redacted"));
        assert!(!dbg.contains("171")); // 0xAB
    }

    #[test]
    fn gf_mul_basic_identities() {
        assert_eq!(gf_mul(0x57, 0x13), 0xfe); // FIPS-197 §4.2 example
        assert_eq!(gf_mul(1, 0x42), 0x42);
        assert_eq!(gf_mul(0, 0x42), 0);
    }
}
