//! HMAC-SHA256 (RFC 2104) and a small HKDF-style key-derivation helper.

use crate::sha256::{Sha256, BLOCK_SIZE, DIGEST_SIZE};

/// Computes `HMAC-SHA256(key, message)`.
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> [u8; DIGEST_SIZE] {
    let mut key_block = [0u8; BLOCK_SIZE];
    if key.len() > BLOCK_SIZE {
        let digest = crate::sha256::sha256(key);
        key_block[..DIGEST_SIZE].copy_from_slice(&digest);
    } else {
        key_block[..key.len()].copy_from_slice(key);
    }
    let mut ipad = [0x36u8; BLOCK_SIZE];
    let mut opad = [0x5cu8; BLOCK_SIZE];
    for i in 0..BLOCK_SIZE {
        ipad[i] ^= key_block[i];
        opad[i] ^= key_block[i];
    }
    let mut inner = Sha256::new();
    inner.update(&ipad);
    inner.update(message);
    let inner_digest = inner.finalize();
    let mut outer = Sha256::new();
    outer.update(&opad);
    outer.update(&inner_digest);
    outer.finalize()
}

/// Constant-time comparison of two MACs.
pub fn verify_mac(expected: &[u8], actual: &[u8]) -> bool {
    if expected.len() != actual.len() {
        return false;
    }
    let mut diff = 0u8;
    for (a, b) in expected.iter().zip(actual.iter()) {
        diff |= a ^ b;
    }
    diff == 0
}

/// Derives `len` bytes of key material from an input key and a context label,
/// HKDF-expand style (`T(i) = HMAC(key, T(i-1) || label || i)`).
// taint: source — stretches a secret into fresh key material; the output
// bytes are exactly as secret as the input key.
pub fn derive_key(key: &[u8], label: &str, len: usize) -> Vec<u8> {
    // alloc: startup — keys derive at provisioning and session open, never per event.
    let mut out = Vec::with_capacity(len);
    let mut previous: Vec<u8> = Vec::new();
    let mut counter = 1u8;
    while out.len() < len {
        // alloc: startup — keys derive at provisioning and session open, never per event.
        let mut msg = previous.clone();
        msg.extend_from_slice(label.as_bytes());
        msg.push(counter);
        let block = hmac_sha256(key, &msg);
        // alloc: startup — keys derive at provisioning and session open, never per event.
        previous = block.to_vec();
        out.extend_from_slice(&block);
        counter = counter.wrapping_add(1);
    }
    out.truncate(len);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha256::to_hex;

    #[test]
    fn rfc4231_test_case_1() {
        let key = [0x0bu8; 20];
        let mac = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            to_hex(&mac),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_test_case_2() {
        let mac = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            to_hex(&mac),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_test_case_with_long_key() {
        let key = [0xaau8; 131];
        let mac = hmac_sha256(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            to_hex(&mac),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn verify_mac_checks_equality_and_length() {
        let mac = hmac_sha256(b"k", b"m");
        assert!(verify_mac(&mac, &mac));
        let mut bad = mac;
        bad[0] ^= 1;
        assert!(!verify_mac(&mac, &bad));
        assert!(!verify_mac(&mac, &mac[..31]));
    }

    #[test]
    fn derive_key_is_deterministic_and_label_sensitive() {
        let a = derive_key(b"master", "doc-key", 16);
        let b = derive_key(b"master", "doc-key", 16);
        let c = derive_key(b"master", "mac-key", 16);
        let d = derive_key(b"other", "doc-key", 16);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
        assert_eq!(a.len(), 16);
        // Longer than one HMAC block of output.
        let long = derive_key(b"master", "stream", 100);
        assert_eq!(long.len(), 100);
        assert_eq!(&long[..16], &derive_key(b"master", "stream", 16)[..]);
    }
}
