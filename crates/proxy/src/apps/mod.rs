//! The two demonstration applications of the paper (§3).

pub mod collab;
pub mod dissem;
