//! Low-level encodings of the skip index: varints and recursively compressed
//! tag bitmaps.
//!
//! The *recursive compression* of the paper exploits the fact that the tag set
//! of a subtree is always a subset of the tag set of its enclosing summarised
//! subtree: instead of one bit per dictionary entry, a nested summary spends
//! one bit per member of its parent's tag set. On deeply structured documents
//! this shrinks inner bitmaps to one or two bytes.

use sdds_xml::{TagId, TagSet};

/// Writes `value` as an LEB128 varint.
pub fn write_varint(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7F) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads an LEB128 varint from `bytes` starting at `pos`. Returns the value
/// and the number of bytes consumed, or `None` on truncated/overlong input.
pub fn read_varint(bytes: &[u8], pos: usize) -> Option<(u64, usize)> {
    let mut value = 0u64;
    let mut shift = 0u32;
    let mut used = 0usize;
    loop {
        let byte = *bytes.get(pos + used)?;
        used += 1;
        value |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return Some((value, used));
        }
        shift += 7;
        if shift >= 64 {
            return None;
        }
    }
}

/// Number of bytes [`write_varint`] produces for `value`.
pub fn varint_len(value: u64) -> usize {
    let mut len = 1;
    let mut v = value >> 7;
    while v != 0 {
        len += 1;
        v >>= 7;
    }
    len
}

/// An ordered reference list of tags against which a nested bitmap is encoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TagReference {
    /// Tag ids, ascending.
    pub tags: Vec<TagId>,
}

impl TagReference {
    /// Reference covering a whole dictionary of `dict_len` tags.
    pub fn full(dict_len: usize) -> Self {
        TagReference {
            // alloc: amortized — bitmap expansion bounded by the dictionary size, per materialised reference.
            tags: (0..dict_len).map(|i| TagId(i as u16)).collect(),
        }
    }

    /// Reference covering exactly the members of `set`.
    pub fn from_set(set: &TagSet) -> Self {
        TagReference {
            // alloc: amortized — bitmap expansion bounded by the dictionary size, per materialised reference.
            tags: set.iter().collect(),
        }
    }

    /// Number of referenced tags (bits of a bitmap encoded against it).
    pub fn len(&self) -> usize {
        self.tags.len()
    }

    /// True if the reference is empty.
    pub fn is_empty(&self) -> bool {
        self.tags.is_empty()
    }

    /// Encodes `set` (which must be a subset of the reference) as a bitmap of
    /// `ceil(len/8)` bytes, one bit per reference entry.
    pub fn encode_subset(&self, set: &TagSet) -> Vec<u8> {
        let mut out = vec![0u8; self.tags.len().div_ceil(8)];
        for (i, tag) in self.tags.iter().enumerate() {
            if set.contains(*tag) {
                out[i / 8] |= 1 << (i % 8);
            }
        }
        out
    }

    /// Decodes a bitmap produced by [`TagReference::encode_subset`].
    pub fn decode_subset(&self, bitmap: &[u8]) -> TagSet {
        let mut set = TagSet::new();
        for (i, tag) in self.tags.iter().enumerate() {
            if bitmap.get(i / 8).is_some_and(|b| b & (1 << (i % 8)) != 0) {
                set.insert(*tag);
            }
        }
        set
    }

    /// Number of bitmap bytes needed against this reference.
    pub fn bitmap_len(&self) -> usize {
        self.tags.len().div_ceil(8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_roundtrip() {
        for value in [
            0u64,
            1,
            127,
            128,
            255,
            300,
            16_383,
            16_384,
            u32::MAX as u64,
            u64::MAX,
        ] {
            let mut buf = Vec::new();
            write_varint(&mut buf, value);
            assert_eq!(buf.len(), varint_len(value));
            let (back, used) = read_varint(&buf, 0).unwrap();
            assert_eq!(back, value);
            assert_eq!(used, buf.len());
        }
    }

    #[test]
    fn varint_reads_at_offsets_and_rejects_truncation() {
        let mut buf = vec![0xAA];
        write_varint(&mut buf, 300);
        let (v, used) = read_varint(&buf, 1).unwrap();
        assert_eq!(v, 300);
        assert_eq!(used, 2);
        assert!(read_varint(&buf[..2], 1).is_none());
        assert!(read_varint(&[], 0).is_none());
        // Overlong encoding (> 10 bytes of continuation) is rejected.
        assert!(read_varint(&[0x80; 12], 0).is_none());
    }

    #[test]
    fn full_reference_round_trips_any_subset() {
        let reference = TagReference::full(20);
        assert_eq!(reference.len(), 20);
        assert_eq!(reference.bitmap_len(), 3);
        let set: TagSet = [TagId(0), TagId(7), TagId(19)].into_iter().collect();
        let bitmap = reference.encode_subset(&set);
        assert_eq!(bitmap.len(), 3);
        assert_eq!(reference.decode_subset(&bitmap), set);
    }

    #[test]
    fn nested_reference_uses_fewer_bits() {
        // Dictionary of 100 tags, but the parent subtree only contains 5: the
        // child bitmap needs a single byte instead of 13.
        let parent_set: TagSet = [TagId(3), TagId(17), TagId(42), TagId(77), TagId(99)]
            .into_iter()
            .collect();
        let parent_ref = TagReference::from_set(&parent_set);
        assert_eq!(parent_ref.bitmap_len(), 1);
        assert_eq!(TagReference::full(100).bitmap_len(), 13);

        let child_set: TagSet = [TagId(17), TagId(99)].into_iter().collect();
        let bitmap = parent_ref.encode_subset(&child_set);
        assert_eq!(bitmap.len(), 1);
        assert_eq!(parent_ref.decode_subset(&bitmap), child_set);
    }

    #[test]
    fn empty_reference_and_empty_set() {
        let reference = TagReference::from_set(&TagSet::new());
        assert!(reference.is_empty());
        assert_eq!(reference.bitmap_len(), 0);
        let bitmap = reference.encode_subset(&TagSet::new());
        assert!(bitmap.is_empty());
        assert!(reference.decode_subset(&bitmap).is_empty());
    }
}
