//! # sdds — safe data sharing on smart devices, behind one facade
//!
//! Rust reproduction of Bouganim et al., *Safe Data Sharing and Data
//! Dissemination on Smart Devices* (SIGMOD 2005): access-control rules are
//! evaluated **inside a smart-card SOE** over **streaming, encrypted** XML,
//! so rights can change per user at any time without re-encrypting or
//! redistributing the documents.
//!
//! This crate is the application-facing API — the paper's §3 proxy promise of
//! "an XML API independent of the underlying protocols (JDBC, APDU)" made
//! concrete:
//!
//! * [`Publisher`] — the trusted side of a community: owns the master secrets
//!   and the policy, encrypts documents onto the untrusted sharded
//!   [`DspService`], keeps the protected per-subject rule blobs in sync,
//! * [`Client`] — one user's terminal + card, built by [`Client::builder`]
//!   (PKI, card profile, service handle) and provisioned against a publisher;
//!   pulls views through [`Client::authorized_view`] (full APDU card path) or
//!   [`Client::open_stream`] (incremental [`ViewStream`] event iterator),
//! * [`SddsError`] — the one error type of the facade,
//! * [`apps`] — the paper's two demo applications (collaborative community,
//!   selective dissemination), built entirely on the facade.
//!
//! There is exactly **one** serving path underneath, whatever the deployment
//! size: the sharded, `Sync` [`DspService`]. A single-user demo runs it with
//! one shard; the E10 multi-client experiment runs the very same path with 16
//! shards and a session scheduler — and the views are byte-identical
//! (`tests/facade_equivalence.rs`).
//!
//! ```
//! use sdds::{Client, Publisher, RuleSet, Document, Sign};
//!
//! # fn main() -> Result<(), sdds::SddsError> {
//! let rules = RuleSet::parse("+, parent, /family\n-, parent, //ssn")?;
//! let mut publisher = Publisher::new(b"family-secret", rules);
//! let document = Document::parse("<family><agenda/><ssn>42</ssn></family>")?;
//! publisher.publish("agenda", &document)?;
//!
//! let parent = Client::builder("parent").provision(&publisher)?;
//! let view = parent.authorized_view("agenda")?;
//! assert!(view.contains("<agenda"));
//! assert!(!view.contains("ssn"));
//!
//! // A policy change ships a new protected rule set — the document stays put.
//! publisher.grant("teen", Sign::Permit, "//agenda")?;
//! let teen = Client::builder("teen").provision(&publisher)?;
//! assert!(teen.authorized_view("agenda")?.contains("<agenda"));
//! # Ok(())
//! # }
//! ```
//!
//! The workspace crates remain available (re-exported below) for anything the
//! facade does not cover: the raw SOE engine, the card emulator, the crypto
//! substrate, the benches.

#![forbid(unsafe_code)]

pub mod apps;
mod client;
mod error;
mod stream;

pub use client::{Client, ClientBuilder, PublishReceipt, Publisher, PublisherBuilder};
pub use error::SddsError;
pub use stream::ViewStream;

// The most common leaf types, at the root so simple applications import only
// `sdds::*`.
pub use sdds_card::{CardProfile, CostModel};
pub use sdds_core::conflict::AccessPolicy;
pub use sdds_core::rule::{RuleSet, Sign, Subject};
pub use sdds_dsp::service::{SchedulerEngine, SessionScheduler};
pub use sdds_dsp::DspService;
pub use sdds_obs::{FlightRecorder, ObsSnapshot};
pub use sdds_proxy::{CardSession, DisseminationChannel, SimulatedPki, Terminal};
pub use sdds_xml::{Document, Event};

// Whole-crate re-exports for advanced use.
pub use sdds_card as card;
pub use sdds_core as core;
pub use sdds_crypto as crypto;
pub use sdds_dsp as dsp;
pub use sdds_obs as obs;
pub use sdds_proxy as proxy;
pub use sdds_xml as xml;
pub use sdds_xpath as xpath;
