//! Workspace facade for the SDDS reproduction (Bouganim et al., SIGMOD 2005).
//!
//! This crate exists to host the top-level integration tests (`tests/`) and
//! runnable examples (`examples/`); it simply re-exports the workspace crates
//! so downstream users can depend on a single `sdds` crate if they prefer.

pub use sdds_card as card;
pub use sdds_core as core;
pub use sdds_crypto as crypto;
pub use sdds_dsp as dsp;
pub use sdds_proxy as proxy;
pub use sdds_xml as xml;
pub use sdds_xpath as xpath;
