//! FNV-sharded, concurrently accessible document store.
//!
//! The single-tenant [`DspStore`] sits behind one `&mut self` API: every
//! request of every client serializes on the same structure, which is exactly
//! the bottleneck the E10 experiment measures. [`ShardedStore`] splits the
//! document space over `N` shards keyed by the FNV-1a hash of the document id;
//! each shard holds its own [`DspStore`] and its own [`ServerStats`] behind
//! its own `RwLock`, so requests for documents on different shards proceed
//! concurrently and only same-shard requests queue on one another.
//!
//! Serving mutates the per-shard statistics, so every request takes its
//! shard's *write* lock — the lock models the serial capacity of one shard,
//! which is what the service-time model of [`crate::service::ServiceModel`]
//! charges. Global statistics are obtained by merging the per-shard counters
//! on read ([`ShardedStore::stats`]), using the same [`ServerStats::merge`]
//! the single-tenant server tests pin.

use std::hash::Hasher;
use std::sync::RwLock;

use sdds_core::secdoc::{DocumentHeader, SecureDocument};
use sdds_core::session::ProtectedRules;
use sdds_core::CoreError;
use sdds_crypto::merkle::MerkleProof;
use sdds_xml::symbols::Fnv1a;

use crate::server::ServerStats;
use crate::store::DspStore;

// ---------------------------------------------------------------------------
// The one serving path of the workspace: every header, chunk and rule blob —
// whether requested through the sharded service or through the single-tenant
// `DspServer` wrapper — is served and accounted by these helpers.
// ---------------------------------------------------------------------------

/// Serves a document header out of `store`, accounting it on `stats`.
fn serve_header(
    store: &DspStore,
    stats: &mut ServerStats,
    doc_id: &str,
) -> Result<DocumentHeader, CoreError> {
    let record = store.get(doc_id).ok_or_else(|| missing(doc_id))?;
    let header = record.document.header.clone();
    stats.record_header(header.encode().len());
    Ok(header)
}

/// Serves one encrypted chunk and its Merkle proof out of `store`.
fn serve_chunk(
    store: &DspStore,
    stats: &mut ServerStats,
    doc_id: &str,
    index: u32,
) -> Result<(Vec<u8>, MerkleProof), CoreError> {
    let record = store.get(doc_id).ok_or_else(|| missing(doc_id))?;
    let chunk = record
        .document
        .chunk(index as usize)
        .ok_or_else(|| CoreError::BadState {
            message: format!("chunk {index} out of range for `{doc_id}`"),
        })?
        .to_vec();
    let proof = record.document.proof(index as usize)?;
    stats.record_chunk(chunk.len() + proof.encode().len());
    Ok((chunk, proof))
}

/// Serves the protected rule blob of `subject` out of `store`.
fn serve_rules(
    store: &DspStore,
    stats: &mut ServerStats,
    doc_id: &str,
    subject: &str,
) -> Result<Vec<u8>, CoreError> {
    let record = store.get(doc_id).ok_or_else(|| missing(doc_id))?;
    let blob = record
        .rules
        .get(subject)
        .ok_or_else(|| CoreError::BadState {
            message: format!("no rules stored for subject `{subject}` on `{doc_id}`"),
        })?
        .clone();
    stats.record_rules(blob.len());
    Ok(blob)
}

fn missing(doc_id: &str) -> CoreError {
    CoreError::BadState {
        message: format!("document `{doc_id}` is not stored at this DSP"),
    }
}

/// FNV-1a over the document id (the workspace's [`Fnv1a`] hasher) — stable
/// and good enough to spread ids of the form `folder-<n>` evenly over a
/// handful of shards.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hasher = Fnv1a::default();
    hasher.write(bytes);
    hasher.finish()
}

/// One shard: a plain store plus its serving counters.
#[derive(Debug, Default)]
struct Shard {
    store: DspStore,
    stats: ServerStats,
}

/// A document store sharded by FNV of the document id.
#[derive(Debug)]
pub struct ShardedStore {
    shards: Vec<RwLock<Shard>>,
}

impl ShardedStore {
    /// Creates a store with `shards` shards (at least one).
    pub fn new(shards: usize) -> Self {
        let count = shards.max(1);
        ShardedStore {
            shards: (0..count).map(|_| RwLock::new(Shard::default())).collect(),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Index of the shard owning `doc_id`.
    pub fn shard_of(&self, doc_id: &str) -> usize {
        (fnv1a(doc_id.as_bytes()) % self.shards.len() as u64) as usize
    }

    fn shard(&self, doc_id: &str) -> &RwLock<Shard> {
        &self.shards[self.shard_of(doc_id)]
    }

    /// Uploads (or replaces) a document on its shard, keeping stored rule
    /// blobs (see [`DspStore::put_document`]).
    pub fn put_document(&self, document: SecureDocument) {
        self.put_document_with(document, false);
    }

    /// Uploads (or replaces) a document, choosing whether stored rule blobs
    /// survive the replacement (see [`DspStore::put_document_with`]).
    pub fn put_document_with(&self, document: SecureDocument, clear_rules_on_replace: bool) {
        let shard = self.shard(&document.header.doc_id);
        shard
            .write()
            .expect("shard lock poisoned")
            .store
            .put_document_with(document, clear_rules_on_replace);
    }

    /// Stores the protected rules of `subject` for `doc_id`.
    pub fn put_rules(
        &self,
        doc_id: &str,
        subject: &str,
        rules: &ProtectedRules,
    ) -> Result<(), CoreError> {
        self.shard(doc_id)
            .write()
            .expect("shard lock poisoned")
            .store
            .put_rules(doc_id, subject, rules)
    }

    /// Fetches a document header (counted on the owning shard).
    pub fn fetch_header(&self, doc_id: &str) -> Result<DocumentHeader, CoreError> {
        let mut shard = self.shard(doc_id).write().expect("shard lock poisoned");
        let Shard { store, stats } = &mut *shard;
        serve_header(store, stats, doc_id)
    }

    /// Fetches one encrypted chunk and its Merkle proof.
    pub fn fetch_chunk(
        &self,
        doc_id: &str,
        index: u32,
    ) -> Result<(Vec<u8>, MerkleProof), CoreError> {
        let mut shard = self.shard(doc_id).write().expect("shard lock poisoned");
        let Shard { store, stats } = &mut *shard;
        serve_chunk(store, stats, doc_id, index)
    }

    /// Fetches the protected rule blob of `subject` for `doc_id`.
    pub fn fetch_rules(&self, doc_id: &str, subject: &str) -> Result<Vec<u8>, CoreError> {
        let mut shard = self.shard(doc_id).write().expect("shard lock poisoned");
        let Shard { store, stats } = &mut *shard;
        serve_rules(store, stats, doc_id, subject)
    }

    /// Merged statistics of every shard.
    pub fn stats(&self) -> ServerStats {
        let mut merged = ServerStats::default();
        for shard in &self.shards {
            merged.merge(&shard.read().expect("shard lock poisoned").stats);
        }
        merged
    }

    /// Per-shard statistics, indexed by shard (the capacity model reads the
    /// busiest shard off this).
    pub fn shard_stats(&self) -> Vec<ServerStats> {
        self.shards
            .iter()
            .map(|s| s.read().expect("shard lock poisoned").stats)
            .collect()
    }

    /// Resets the statistics of every shard.
    pub fn reset_stats(&self) {
        for shard in &self.shards {
            shard.write().expect("shard lock poisoned").stats = ServerStats::default();
        }
    }

    /// Upload revision of `doc_id` (`None` when the document is not stored).
    pub fn revision(&self, doc_id: &str) -> Option<u64> {
        self.shard(doc_id)
            .read()
            .expect("shard lock poisoned")
            .store
            .get(doc_id)
            .map(|record| record.revision)
    }

    /// True when `doc_id` is stored on its shard.
    pub fn contains(&self, doc_id: &str) -> bool {
        self.revision(doc_id).is_some()
    }

    /// Ids of every stored document, across shards (sorted).
    pub fn document_ids(&self) -> Vec<String> {
        let mut ids: Vec<String> = self
            .shards
            .iter()
            .flat_map(|s| s.read().expect("shard lock poisoned").store.document_ids())
            .collect();
        ids.sort();
        ids
    }

    /// Number of stored documents, across shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().expect("shard lock poisoned").store.len())
            .sum()
    }

    /// True when no shard stores any document.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total ciphertext bytes stored, across shards.
    pub fn stored_bytes(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().expect("shard lock poisoned").store.stored_bytes())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdds_core::rule::RuleSet;
    use sdds_core::secdoc::SecureDocumentBuilder;
    use sdds_crypto::SecretKey;
    use sdds_xml::generator::{self, GeneratorConfig, HospitalProfile};

    fn document(id: &str) -> SecureDocument {
        let doc = generator::hospital(
            &HospitalProfile {
                patients: 2,
                ..HospitalProfile::default()
            },
            &GeneratorConfig::default(),
        );
        SecureDocumentBuilder::new(id, SecretKey::derive(b"s", "k")).build(&doc)
    }

    #[test]
    fn documents_spread_over_shards_and_serve_like_one_store() {
        let store = ShardedStore::new(4);
        assert_eq!(store.shard_count(), 4);
        assert!(store.is_empty());
        for i in 0..16 {
            store.put_document(document(&format!("doc-{i}")));
        }
        assert_eq!(store.len(), 16);
        assert_eq!(store.document_ids().len(), 16);
        assert!(store.stored_bytes() > 0);
        // At least two distinct shards hold documents (FNV spreads 16 ids).
        let occupied: Vec<usize> = (0..16)
            .map(|i| store.shard_of(&format!("doc-{i}")))
            .collect();
        assert!(occupied.iter().any(|&s| s != occupied[0]));

        let header = store.fetch_header("doc-3").unwrap();
        let (chunk, proof) = store.fetch_chunk("doc-3", 0).unwrap();
        proof.verify(&chunk, &header.merkle_root).unwrap();
        assert!(store.fetch_header("doc-99").is_err());
        assert!(store.fetch_chunk("doc-3", 9999).is_err());
    }

    #[test]
    fn per_shard_stats_merge_on_read() {
        let store = ShardedStore::new(4);
        for i in 0..8 {
            store.put_document(document(&format!("doc-{i}")));
        }
        let rules = RuleSet::parse("+, doctor, //patient").unwrap();
        let sealed = ProtectedRules::seal(&rules, &SecretKey::derive(b"s", "rules"));
        store.put_rules("doc-0", "doctor", &sealed).unwrap();

        for i in 0..8 {
            store.fetch_header(&format!("doc-{i}")).unwrap();
            store.fetch_chunk(&format!("doc-{i}"), 0).unwrap();
        }
        let blob = store.fetch_rules("doc-0", "doctor").unwrap();

        let merged = store.stats();
        assert_eq!(merged.requests, 17);
        assert_eq!(merged.chunks_served, 8);
        assert_eq!(merged.rule_blobs_served, 1);
        assert_eq!(merged.rule_bytes_served, blob.len());
        // The merge really is the sum of the per-shard counters.
        let per_shard = store.shard_stats();
        assert_eq!(per_shard.len(), 4);
        assert_eq!(
            per_shard.iter().map(|s| s.requests).sum::<usize>(),
            merged.requests
        );
        assert_eq!(
            per_shard.iter().map(|s| s.bytes_served).sum::<usize>(),
            merged.bytes_served
        );

        store.reset_stats();
        assert_eq!(store.stats(), ServerStats::default());
    }

    #[test]
    fn zero_shards_clamps_to_one() {
        let store = ShardedStore::new(0);
        assert_eq!(store.shard_count(), 1);
        store.put_document(document("only"));
        assert_eq!(store.shard_of("only"), 0);
        assert!(store.fetch_header("only").is_ok());
    }
}
