#![forbid(unsafe_code)]
//! `sdds-lint` — a token-level scanner enforcing the concurrency discipline
//! the `sdds-check` model checker assumes, with no dependencies outside
//! `std` and no syn-style parsing: comments and string literals are blanked
//! out, `#[cfg(test)]` regions are masked by brace matching, and the rules
//! run over what remains.
//!
//! Rules (see [`Rule`]):
//!
//! - **std-sync** — service crates (`sdds-dsp`, `sdds-proxy`) and the facade
//!   must import synchronization from `sdds-sync`, never `std::sync` /
//!   `std::thread`; otherwise the model-check build silently stops
//!   instrumenting them.
//! - **ordering** — every non-`Relaxed` atomic `Ordering::…` must carry a
//!   `// ordering:` justification comment on the same or preceding line.
//! - **no-panic** — no `unwrap` / `expect` / `panic!` / `unreachable!` in
//!   non-test library code; `// lint: infallible` (with a reason) is the
//!   escape hatch.
//! - **no-sleep** — no `sleep(…)` in service code: sleeping hides ordering
//!   bugs and the model checker turns it into a plain yield anyway.
//! - **forbid-unsafe** — every first-party crate root carries
//!   `#![forbid(unsafe_code)]`.
//! - **adhoc-atomic** — no new ad-hoc `AtomicU64` counters in service code
//!   outside `sdds-obs`: register a `Counter`/`Gauge`/`Histogram` so the
//!   metric shows up in `ObsSnapshot`; `// lint: atomic` (with a reason) is
//!   the escape hatch for atomics that are not metrics.
//! - **doc-sync** — every experiment bench (`crates/bench/benches/e*.rs`)
//!   must be named in the ARCHITECTURE.md experiment table, and every metric
//!   family declared in `crates/obs/src/families.rs` must appear in the
//!   book's metric table, so the book cannot silently fall behind the code.
//!
//! On top of the token rules sits the item-level **trust-boundary analyzer**
//! ([`items`], [`graph`], [`taint`]): it parses fn signatures, struct/enum
//! fields, impl blocks, and `use` items, classifies types into sensitivity
//! tiers from `trust.toml` plus `// taint:` annotations, and proves that no
//! `Secret` or `Plaintext` type can reach the untrusted DSP or the telemetry
//! layer (rules **taint-dsp**, **taint-obs**, **taint-debug**,
//! **taint-annotation**).

pub mod calls;
pub mod escape;
pub mod graph;
pub mod items;
pub mod taint;

use std::fmt;
use std::path::{Path, PathBuf};

/// Which rule a violation belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    /// Direct `std::sync` / `std::thread` use in facade-routed code.
    StdSync,
    /// Non-`Relaxed` atomic ordering without a `// ordering:` justification.
    Ordering,
    /// `unwrap` / `expect` / `panic!` / `unreachable!` in library code.
    NoPanic,
    /// `sleep(…)` in service code.
    NoSleep,
    /// Missing `#![forbid(unsafe_code)]` on a crate root.
    ForbidUnsafe,
    /// Ad-hoc `AtomicU64` counter construction outside `sdds-obs`.
    AdhocAtomic,
    /// An experiment bench file or metric family missing from
    /// ARCHITECTURE.md.
    DocSync,
    /// A `Secret`/`Plaintext` type reachable from an item inside the
    /// untrusted DSP scope.
    TaintDsp,
    /// A `Secret`/`Plaintext` type reachable from telemetry code, or a
    /// secret tier name on a metric-label call.
    TaintObs,
    /// A `Secret` type that derives/impls `Debug`/`Display` or leaks raw
    /// bytes without a `// taint: redacted` justification.
    TaintDebug,
    /// A crypto boundary fn missing its `// taint: source|sink` annotation,
    /// or an annotation inconsistent with the signature it describes.
    TaintAnnotation,
    /// An allocating/copying construct reachable from a hot root without a
    /// justified `// alloc:` annotation.
    HotAlloc,
    /// A malformed or stale `// alloc:` justification, or a hot-root
    /// pattern matching no workspace fn.
    HotAnnotation,
}

impl Rule {
    /// Stable rule name, as printed in violation reports.
    pub fn name(self) -> &'static str {
        match self {
            Rule::StdSync => "std-sync",
            Rule::Ordering => "ordering",
            Rule::NoPanic => "no-panic",
            Rule::NoSleep => "no-sleep",
            Rule::ForbidUnsafe => "forbid-unsafe",
            Rule::AdhocAtomic => "adhoc-atomic",
            Rule::DocSync => "doc-sync",
            Rule::TaintDsp => "taint-dsp",
            Rule::TaintObs => "taint-obs",
            Rule::TaintDebug => "taint-debug",
            Rule::TaintAnnotation => "taint-annotation",
            Rule::HotAlloc => "hot-alloc",
            Rule::HotAnnotation => "hot-annotation",
        }
    }

    /// All rules, in report order.
    pub const ALL: &'static [Rule] = &[
        Rule::StdSync,
        Rule::Ordering,
        Rule::NoPanic,
        Rule::NoSleep,
        Rule::ForbidUnsafe,
        Rule::AdhocAtomic,
        Rule::DocSync,
        Rule::TaintDsp,
        Rule::TaintObs,
        Rule::TaintDebug,
        Rule::TaintAnnotation,
        Rule::HotAlloc,
        Rule::HotAnnotation,
    ];

    /// Looks a rule up by its stable name (`lint --explain <rule>`).
    pub fn by_name(name: &str) -> Option<Rule> {
        Rule::ALL.iter().copied().find(|r| r.name() == name)
    }

    /// A paragraph of rationale for `lint --explain`: what the rule catches
    /// and why the workspace enforces it.
    pub fn explain(self) -> &'static str {
        match self {
            Rule::StdSync => {
                "Service crates (sdds-dsp, sdds-proxy, sdds-obs) and the facade must \
                 import synchronization from sdds-sync, never std::sync / std::thread. \
                 The model-check build (--cfg sdds_check) swaps sdds-sync onto the \
                 sdds-check shims; a direct std::sync import silently escapes the \
                 checker's schedule control."
            }
            Rule::Ordering => {
                "Every non-Relaxed atomic Ordering::… must carry a `// ordering:` \
                 justification on the same or a preceding comment line. Acquire/Release \
                 pairs are protocol decisions; the comment records which store the load \
                 pairs with so reviewers can audit the happens-before edge."
            }
            Rule::NoPanic => {
                "No unwrap / expect / panic! / unreachable! in non-test library code: \
                 the card and server loops must degrade with typed errors, not abort. \
                 `// lint: infallible — <reason>` is the escape hatch for statically \
                 impossible failures."
            }
            Rule::NoSleep => {
                "No sleep(…) in service code: sleeping hides ordering bugs behind \
                 timing, and the model checker turns every sleep into a plain yield \
                 anyway. Use condvars or channels to wait for a condition."
            }
            Rule::ForbidUnsafe => {
                "Every first-party crate root must carry #![forbid(unsafe_code)]: the \
                 SOE simulation's security argument assumes no first-party unsafe."
            }
            Rule::AdhocAtomic => {
                "No ad-hoc AtomicU64 counters in service code outside sdds-obs: a bare \
                 atomic is a shadow metric that never reaches ObsSnapshot. Register a \
                 Counter/Gauge/Histogram instead, or justify with `// lint: atomic — \
                 <reason>` for atomics that are not metrics."
            }
            Rule::DocSync => {
                "ARCHITECTURE.md must stay in sync with the code: every experiment \
                 bench (crates/bench/benches/e*.rs), every metric family declared in \
                 crates/obs/src/families.rs, and every type named in lint/trust.toml's \
                 sensitivity tiers must appear in the book's tables."
            }
            Rule::TaintDsp => {
                "The DSP is the paper's untrusted server: it stores and serves \
                 encrypted chunks and must never see cleartext or key material. No \
                 Secret- or Plaintext-tier type (explicit in trust.toml, or inheriting \
                 the tier through a struct/enum field) may appear in any sdds-dsp item \
                 signature, struct field, use item, or public re-export."
            }
            Rule::TaintObs => {
                "Telemetry exports JSON from every layer, so the observability crate \
                 is an exfiltration path: no Secret/Plaintext-tier type may appear in \
                 sdds-obs item signatures, and no secret tier name may appear on a \
                 metric-label call (counter_with/gauge_with/histogram_with) anywhere."
            }
            Rule::TaintDebug => {
                "A Secret-tier type must not derive Debug, impl Debug/Display, or \
                 expose raw bytes (Vec<u8>/&[u8] returns) without justification: \
                 `{:?}` on a key ends up in logs and flight-recorder labels. A manual \
                 redacting impl is fine — mark it `// taint: redacted — <reason>`; \
                 byte accessors need `// taint: source|sink — <reason>`."
            }
            Rule::TaintAnnotation => {
                "Every crypto boundary crossing (a fn whose name contains a boundary \
                 verb — encrypt, decrypt, seal, wrap, unwrap_key, derive — and whose \
                 signature touches tiered types or raw bytes) must carry a `// taint: \
                 source|sink — <reason>` annotation, and the annotation must agree \
                 with the signature: a source produces sensitive data (so it must not \
                 be declared on a fn returning only ciphertext), a sink consumes it \
                 (so it must not return Secret/Plaintext)."
            }
            Rule::HotAlloc => {
                "The paper's performance argument is streaming evaluation in \
                 near-constant RAM: the per-event serving and rule-step paths must do \
                 constant work per event. No allocating or copying construct (clone, \
                 to_vec, to_owned, collect, format!, owning constructors) may be \
                 reachable from a hot root named in lint/hotpath.toml; every finding \
                 carries its root→…→fn call chain. Serve borrowed slices or share \
                 via Arc, or justify with `// alloc: amortized|startup|cold — \
                 <reason>`."
            }
            Rule::HotAnnotation => {
                "`// alloc:` justifications are reviewed claims and must stay \
                 honest: the keyword must be one of amortized/startup/cold with a \
                 nonempty reason, the annotated fn must actually be reachable from a \
                 hot root (otherwise the annotation is stale and must go), and every \
                 hot-root pattern in lint/hotpath.toml must match a real workspace \
                 fn."
            }
        }
    }
}

/// One rule violation at a source location.
#[derive(Debug, Clone)]
pub struct Violation {
    /// File the violation is in (as passed to the scanner).
    pub file: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// The rule violated.
    pub rule: Rule,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule.name(),
            self.message
        )
    }
}

fn json_escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Renders violations as a stable machine-readable JSON array (`lint --json`):
/// one object per violation with `rule`, `file`, `line`, and `message` keys,
/// sorted the same way the human report prints them. Hand-rolled because the
/// linter must stay dependency-free.
pub fn violations_to_json(violations: &[Violation]) -> String {
    let mut out = String::from("[");
    for (i, v) in violations.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n  {\"rule\": \"");
        out.push_str(v.rule.name());
        out.push_str("\", \"file\": \"");
        json_escape(&v.file.display().to_string(), &mut out);
        out.push_str("\", \"line\": ");
        out.push_str(&v.line.to_string());
        out.push_str(", \"message\": \"");
        json_escape(&v.message, &mut out);
        out.push_str("\"}");
    }
    out.push_str(if violations.is_empty() {
        "]\n"
    } else {
        "\n]\n"
    });
    out
}

/// Which rule families apply to a file (derived from its path by the
/// binary; explicit here so the library is testable without a filesystem).
#[derive(Debug, Clone, Copy)]
pub struct FileRules {
    /// Enforce the `sdds-sync` facade (no `std::sync` / `std::thread`).
    pub facade: bool,
    /// Forbid `sleep(…)`.
    pub no_sleep: bool,
    /// Forbid `unwrap` / `expect` / `panic!` / `unreachable!`.
    pub no_panic: bool,
    /// Require `// ordering:` justifications.
    pub ordering: bool,
    /// Require `#![forbid(unsafe_code)]` (crate roots only).
    pub forbid_unsafe: bool,
    /// Forbid ad-hoc `AtomicU64::new` counters (service code outside
    /// `sdds-obs`).
    pub adhoc_atomic: bool,
}

/// A source file ready to scan: raw text plus derived views.
struct Source<'a> {
    raw_lines: Vec<&'a str>,
    /// Source with comments and string/char literals blanked to spaces
    /// (newlines preserved, so offsets and line numbers match `raw`).
    code: String,
    /// Byte offsets (into `code`) covered by `#[cfg(test)]` items.
    test_mask: Vec<(usize, usize)>,
}

/// Blanks comments and string/char literals, preserving newlines and byte
/// offsets. Token-level rules then cannot be fooled by `"std::sync"` in a
/// string or an `unwrap()` in a doc example.
fn blank_noncode(src: &str) -> String {
    blank_noncode_impl(src, false)
}

/// Like [`blank_noncode`], but keeps the `//` marker of each line comment in
/// place (the comment text itself is still blanked). A `//` in the output is
/// then a *real* line-comment start — a `//` inside a string literal stays
/// blanked — which is what the `// alloc:` annotation scanner needs to tell
/// the two apart even when the string spans lines.
pub(crate) fn blank_noncode_keep_markers(src: &str) -> String {
    blank_noncode_impl(src, true)
}

fn blank_noncode_impl(src: &str, keep_line_markers: bool) -> String {
    #[derive(PartialEq)]
    enum St {
        Code,
        Line,
        Block(usize),
        Str,
        RawStr(usize),
        Char,
    }
    let bytes = src.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut st = St::Code;
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        let next = bytes.get(i + 1).copied();
        match st {
            St::Code => match b {
                b'/' if next == Some(b'/') => {
                    st = St::Line;
                    out.extend_from_slice(if keep_line_markers { b"//" } else { b"  " });
                    i += 2;
                    continue;
                }
                b'/' if next == Some(b'*') => {
                    st = St::Block(1);
                    out.extend_from_slice(b"  ");
                    i += 2;
                    continue;
                }
                b'"' => {
                    st = St::Str;
                    out.push(b' ');
                }
                b'r' if matches!(next, Some(b'"') | Some(b'#')) && !prev_is_ident(&out) => {
                    // Raw string r"…" / r#"…"# — count the hashes.
                    let mut hashes = 0;
                    let mut j = i + 1;
                    while bytes.get(j) == Some(&b'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if bytes.get(j) == Some(&b'"') {
                        st = St::RawStr(hashes);
                        out.extend(std::iter::repeat_n(b' ', j - i + 1));
                        i = j + 1;
                        continue;
                    }
                    out.push(b);
                }
                b'b' | b'c' if next == Some(b'r') && !prev_is_ident(&out) => {
                    // Raw byte/C string br"…" / cr#"…"# — without this, the
                    // `"` would open an *escaping* string state and a `\` in
                    // the raw body could swallow the closing quote, blanking
                    // the rest of the file and desyncing line numbers.
                    let mut hashes = 0;
                    let mut j = i + 2;
                    while bytes.get(j) == Some(&b'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if bytes.get(j) == Some(&b'"') {
                        st = St::RawStr(hashes);
                        out.extend(std::iter::repeat_n(b' ', j - i + 1));
                        i = j + 1;
                        continue;
                    }
                    out.push(b);
                }
                b'\'' => {
                    // Only a literal if it closes: 'x' or '\x'. A lifetime
                    // ('a) has no closing quote within a couple of bytes.
                    let close = if next == Some(b'\\') {
                        // Escaped char: find the next quote. The longest
                        // escape is `\u{10FFFF}` — 10 bytes past the
                        // backslash — so the window must reach that far, or
                        // the literal's `{`/`}` bytes leak into blanked code.
                        bytes[i + 2..].iter().take(10).position(|&c| c == b'\'')
                    } else if bytes.get(i + 2) == Some(&b'\'') {
                        Some(0)
                    } else {
                        None
                    };
                    if close.is_some() {
                        st = St::Char;
                    }
                    out.push(b' ');
                }
                _ => out.push(b),
            },
            St::Line => {
                if b == b'\n' {
                    st = St::Code;
                    out.push(b'\n');
                } else {
                    out.push(b' ');
                }
            }
            St::Block(depth) => {
                if b == b'*' && next == Some(b'/') {
                    st = if depth == 1 {
                        St::Code
                    } else {
                        St::Block(depth - 1)
                    };
                    out.extend_from_slice(b"  ");
                    i += 2;
                    continue;
                }
                if b == b'/' && next == Some(b'*') {
                    st = St::Block(depth + 1);
                    out.extend_from_slice(b"  ");
                    i += 2;
                    continue;
                }
                out.push(if b == b'\n' { b'\n' } else { b' ' });
            }
            St::Str => match b {
                b'\\' => {
                    // Keep the newline of a `\`-line-continuation: blanking
                    // must never shift line numbers. A trailing `\` at end of
                    // input consumes only itself, keeping output length equal
                    // to input length.
                    out.push(b' ');
                    if let Some(n) = next {
                        out.push(if n == b'\n' { b'\n' } else { b' ' });
                        i += 2;
                    } else {
                        i += 1;
                    }
                    continue;
                }
                b'"' => {
                    st = St::Code;
                    out.push(b' ');
                }
                _ => out.push(if b == b'\n' { b'\n' } else { b' ' }),
            },
            St::RawStr(hashes) => {
                if b == b'"'
                    && bytes[i + 1..]
                        .iter()
                        .take(hashes)
                        .filter(|&&c| c == b'#')
                        .count()
                        == hashes
                {
                    st = St::Code;
                    out.extend(std::iter::repeat_n(b' ', hashes + 1));
                    i += 1 + hashes;
                    continue;
                }
                out.push(if b == b'\n' { b'\n' } else { b' ' });
            }
            St::Char => match b {
                b'\\' => {
                    out.push(b' ');
                    if let Some(n) = next {
                        out.push(if n == b'\n' { b'\n' } else { b' ' });
                        i += 2;
                    } else {
                        i += 1;
                    }
                    continue;
                }
                b'\'' => {
                    st = St::Code;
                    out.push(b' ');
                }
                _ => out.push(b' '),
            },
        }
        i += 1;
    }
    // Blanking writes one byte per input byte (ASCII spaces/newlines or the
    // original byte), so the result is valid UTF-8 iff the input was.
    String::from_utf8(out).unwrap_or_default() // lint: infallible — output bytes are input bytes or ASCII
}

fn prev_is_ident(out: &[u8]) -> bool {
    out.last()
        .is_some_and(|&b| b.is_ascii_alphanumeric() || b == b'_')
}

/// Computes byte ranges covered by `#[cfg(test)]` items in blanked code: the
/// attribute plus the braced block (or terminating `;`) that follows it.
fn test_regions(code: &str) -> Vec<(usize, usize)> {
    let bytes = code.as_bytes();
    let mut regions = Vec::new();
    let mut from = 0;
    while let Some(at) = code[from..].find("#[cfg(test)]") {
        let start = from + at;
        let mut i = start + "#[cfg(test)]".len();
        // Find the end of the gated item: first `;` at depth 0 or the
        // matching close of the first `{`.
        let mut depth = 0usize;
        let mut end = bytes.len();
        while i < bytes.len() {
            match bytes[i] {
                b'{' => depth += 1,
                b'}' => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        end = i + 1;
                        break;
                    }
                }
                b';' if depth == 0 => {
                    end = i + 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        regions.push((start, end));
        from = end.max(start + 1);
    }
    regions
}

impl<'a> Source<'a> {
    fn new(raw: &'a str) -> Self {
        let code = blank_noncode(raw);
        let test_mask = test_regions(&code);
        Source {
            raw_lines: raw.lines().collect(),
            code,
            test_mask,
        }
    }

    fn in_test(&self, offset: usize) -> bool {
        self.test_mask
            .iter()
            .any(|&(start, end)| offset >= start && offset < end)
    }

    fn line_of(&self, offset: usize) -> usize {
        self.code[..offset].bytes().filter(|&b| b == b'\n').count() + 1
    }

    /// True when `marker` appears in the raw text of `line` or the line
    /// before it (1-based) — the escape-hatch comment convention.
    fn escaped(&self, line: usize, marker: &str) -> bool {
        let here = self.raw_lines.get(line - 1).copied().unwrap_or("");
        if here.contains(marker) {
            return true;
        }
        // Justifications often wrap onto several lines: walk upward through
        // the contiguous `//` comment block directly above the use.
        let mut i = line - 1;
        while i >= 1 {
            let above = self.raw_lines[i - 1];
            if !above.trim_start().starts_with("//") {
                break;
            }
            if above.contains(marker) {
                return true;
            }
            i -= 1;
        }
        false
    }
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Finds `needle` in `code` at token boundaries (not inside an identifier).
fn token_positions(code: &str, needle: &str) -> Vec<usize> {
    let bytes = code.as_bytes();
    let nb = needle.as_bytes();
    let mut found = Vec::new();
    let mut from = 0;
    while let Some(at) = code[from..].find(needle) {
        let start = from + at;
        let end = start + nb.len();
        let left_ok = start == 0 || !is_ident_byte(bytes[start - 1]);
        let right_ok = end >= bytes.len() || !is_ident_byte(bytes[end]);
        if left_ok && right_ok {
            found.push(start);
        }
        from = start + 1;
    }
    found
}

/// True when the first non-whitespace byte after `offset + token` is `what`.
fn followed_by(code: &str, offset: usize, token: &str, what: u8) -> bool {
    code.as_bytes()[offset + token.len()..]
        .iter()
        .find(|b| !b.is_ascii_whitespace())
        == Some(&what)
}

/// Scans one file's contents under the given rule set.
pub fn scan_file(path: &Path, contents: &str, rules: FileRules) -> Vec<Violation> {
    let src = Source::new(contents);
    let mut out = Vec::new();
    let mut push = |line: usize, rule: Rule, message: String| {
        out.push(Violation {
            file: path.to_path_buf(),
            line,
            rule,
            message,
        });
    };

    if rules.forbid_unsafe && !contents.contains("#![forbid(unsafe_code)]") {
        push(
            1,
            Rule::ForbidUnsafe,
            "crate root is missing #![forbid(unsafe_code)]".to_owned(),
        );
    }

    if rules.facade {
        for needle in ["std::sync", "std::thread"] {
            for at in token_positions(&src.code, needle) {
                if src.in_test(at) {
                    continue;
                }
                let line = src.line_of(at);
                push(
                    line,
                    Rule::StdSync,
                    format!("direct `{needle}` use; route through sdds-sync so the model checker can instrument it"),
                );
            }
        }
    }

    if rules.no_sleep {
        for at in token_positions(&src.code, "sleep") {
            if src.in_test(at) || !followed_by(&src.code, at, "sleep", b'(') {
                continue;
            }
            let line = src.line_of(at);
            push(
                line,
                Rule::NoSleep,
                "sleep() in service code: use condvars/channels; sleeping hides ordering bugs"
                    .to_owned(),
            );
        }
    }

    if rules.no_panic {
        for (needle, call_like) in [
            ("unwrap", true),
            ("expect", true),
            ("panic!", false),
            ("unreachable!", false),
        ] {
            let (token, suffix) = if call_like {
                (needle, b'(')
            } else {
                (needle.trim_end_matches('!'), b'!')
            };
            for at in token_positions(&src.code, token) {
                if src.in_test(at) || !followed_by(&src.code, at, token, suffix) {
                    continue;
                }
                let line = src.line_of(at);
                if src.escaped(line, "// lint: infallible") {
                    continue;
                }
                push(
                    line,
                    Rule::NoPanic,
                    format!(
                        "`{needle}` in library code: return a typed error, or justify with `// lint: infallible — <reason>`"
                    ),
                );
            }
        }
    }

    if rules.adhoc_atomic {
        for needle in ["AtomicU64::new"] {
            for at in token_positions(&src.code, needle) {
                if src.in_test(at) {
                    continue;
                }
                let line = src.line_of(at);
                if src.escaped(line, "// lint: atomic") {
                    continue;
                }
                push(
                    line,
                    Rule::AdhocAtomic,
                    format!(
                        "ad-hoc `{needle}` counter in service code: register a \
                         Counter/Gauge/Histogram with sdds-obs so it shows up in \
                         ObsSnapshot, or justify with `// lint: atomic — <reason>`"
                    ),
                );
            }
        }
    }

    if rules.ordering {
        for variant in ["Acquire", "Release", "AcqRel", "SeqCst"] {
            let needle = format!("Ordering::{variant}");
            for at in token_positions(&src.code, &needle) {
                if src.in_test(at) {
                    continue;
                }
                let line = src.line_of(at);
                if src.escaped(line, "// ordering:") {
                    continue;
                }
                push(
                    line,
                    Rule::Ordering,
                    format!(
                        "`{needle}` without a `// ordering:` justification (Relaxed needs none)"
                    ),
                );
            }
        }
    }

    out
}

/// Checks the doc-sync contract: every experiment bench file name in
/// `bench_files` (e.g. `e11_actor_scale.rs`) must appear — stem or full file
/// name — in the text of the architecture book, whose experiment table is
/// the map from paper experiments to benches and gated baseline keys.
/// `book_path` is the path reported in violations (ARCHITECTURE.md).
pub fn check_doc_sync(book_path: &Path, book: &str, bench_files: &[String]) -> Vec<Violation> {
    bench_files
        .iter()
        .filter(|file| {
            let stem = file.strip_suffix(".rs").unwrap_or(file);
            !book.contains(stem)
        })
        .map(|file| Violation {
            file: book_path.to_path_buf(),
            line: 1,
            rule: Rule::DocSync,
            message: format!(
                "experiment bench `{file}` is not mentioned in the architecture \
                 book's experiment table; add a row for it"
            ),
        })
        .collect()
}

/// Extracts metric family strings from the raw text of
/// `crates/obs/src/families.rs`: every `pub const NAME: &str = "…";` line
/// contributes its quoted string. Raw-text on purpose — the naming authority
/// is a flat list of literals and must stay greppable.
pub fn metric_families(families_src: &str) -> Vec<String> {
    families_src
        .lines()
        .filter_map(|line| {
            let trimmed = line.trim_start();
            trimmed.strip_prefix("pub const ")?;
            if !trimmed.contains(": &str") {
                return None;
            }
            let open = trimmed.find('"')? + 1;
            let close = open + trimmed[open..].find('"')?;
            Some(trimmed[open..close].to_owned())
        })
        .collect()
}

/// Checks the metric half of the doc-sync contract: every metric family
/// registered in `sdds-obs` (as listed in `families`) must appear verbatim in
/// the architecture book's metric table. `book_path` is the path reported in
/// violations (ARCHITECTURE.md).
pub fn check_metric_sync(book_path: &Path, book: &str, families: &[String]) -> Vec<Violation> {
    families
        .iter()
        .filter(|family| !book.contains(family.as_str()))
        .map(|family| Violation {
            file: book_path.to_path_buf(),
            line: 1,
            rule: Rule::DocSync,
            message: format!(
                "metric family `{family}` is registered in sdds-obs but missing \
                 from the architecture book's metric table; add a row for it"
            ),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: FileRules = FileRules {
        facade: true,
        no_sleep: true,
        no_panic: true,
        ordering: true,
        forbid_unsafe: false,
        adhoc_atomic: true,
    };

    fn scan(contents: &str) -> Vec<Violation> {
        scan_file(Path::new("x.rs"), contents, ALL)
    }

    #[test]
    fn blanks_strings_and_comments() {
        let v = scan("// std::sync in a comment\nfn f() { let _ = \"std::sync\"; }\n");
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn flags_std_sync_import() {
        let v = scan("use std::sync::Mutex;\n");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::StdSync);
        assert_eq!(v[0].line, 1);
    }

    #[test]
    fn flags_inline_std_thread_path() {
        let v = scan("fn f() { std::thread::spawn(|| {}); }\n");
        assert!(v.iter().any(|v| v.rule == Rule::StdSync));
    }

    #[test]
    fn test_module_is_exempt() {
        let v = scan(
            "fn f() {}\n#[cfg(test)]\nmod tests {\n    use std::sync::Mutex;\n    fn g() { None::<u8>.unwrap(); }\n}\n",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn cfg_test_use_item_is_exempt() {
        let v = scan("#[cfg(test)]\nuse std::sync::Mutex;\n");
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn flags_unwrap_and_honours_escape() {
        let v = scan("fn f(x: Option<u8>) { x.unwrap(); }\n");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::NoPanic);

        let v = scan("fn f(x: Option<u8>) {\n    // lint: infallible — x checked above\n    x.unwrap();\n}\n");
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn unwrap_or_else_is_not_unwrap() {
        let v = scan("fn f(x: Option<u8>) { x.unwrap_or_else(|| 0); }\n");
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn flags_panic_macro() {
        let v = scan("fn f() { panic!(\"boom\"); }\n");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::NoPanic);
    }

    #[test]
    fn ordering_needs_justification_unless_relaxed() {
        let v = scan("fn f() { x.load(Ordering::SeqCst); }\n");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::Ordering);

        let v = scan("fn f() { x.load(Ordering::Relaxed); }\n");
        assert!(v.is_empty(), "{v:?}");

        let v = scan(
            "fn f() { x.load(Ordering::SeqCst); // ordering: pairs with release store in g()\n}\n",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn flags_sleep_call() {
        let v = scan("fn f() { thread::sleep(d); }\n");
        assert!(v.iter().any(|v| v.rule == Rule::NoSleep));

        // `sleep` as part of another identifier is fine.
        let v = scan("fn f() { no_sleep_here(); }\n");
        assert!(v.iter().all(|v| v.rule != Rule::NoSleep));
    }

    #[test]
    fn missing_forbid_unsafe_is_reported() {
        let rules = FileRules {
            forbid_unsafe: true,
            ..ALL
        };
        let v = scan_file(Path::new("lib.rs"), "pub fn f() {}\n", rules);
        assert!(v.iter().any(|v| v.rule == Rule::ForbidUnsafe));

        let v = scan_file(
            Path::new("lib.rs"),
            "#![forbid(unsafe_code)]\npub fn f() {}\n",
            rules,
        );
        assert!(v.iter().all(|v| v.rule != Rule::ForbidUnsafe));
    }

    #[test]
    fn raw_strings_are_blanked() {
        let v = scan("fn f() { let _ = r#\"std::sync unwrap( \"#; }\n");
        assert!(v.is_empty(), "{v:?}");
    }

    /// Blanking must be a byte-length- and newline-preserving map, or every
    /// downstream offset→line computation silently drifts.
    fn assert_blanking_preserves_shape(src: &str) {
        let blanked = blank_noncode(src);
        assert_eq!(blanked.len(), src.len(), "length drift for {src:?}");
        let src_newlines: Vec<usize> = src
            .bytes()
            .enumerate()
            .filter(|&(_, b)| b == b'\n')
            .map(|(i, _)| i)
            .collect();
        let blanked_newlines: Vec<usize> = blanked
            .bytes()
            .enumerate()
            .filter(|&(_, b)| b == b'\n')
            .map(|(i, _)| i)
            .collect();
        assert_eq!(src_newlines, blanked_newlines, "newline drift for {src:?}");
    }

    #[test]
    fn raw_byte_and_c_strings_are_blanked_without_desync() {
        // A `\` inside a raw byte string is a literal byte, not an escape; if
        // the tokenizer fell into the escaping-string state it would swallow
        // the closing quote and blank the unwrap below.
        let src = "fn f() { let _ = br\"a\\\"; let x: Option<u8> = None;\n x.unwrap(); }\n";
        assert_blanking_preserves_shape(src);
        let v = scan(src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::NoPanic);
        assert_eq!(v[0].line, 2);

        let src = "fn f() { let _ = cr#\"std::sync \\ unwrap( \"#; }\n";
        assert_blanking_preserves_shape(src);
        assert!(scan(src).is_empty());

        let src = "fn f() { let _ = br#\"multi\nline \\ raw\"#; let x: Option<u8> = None;\n x.unwrap(); }\n";
        assert_blanking_preserves_shape(src);
        let v = scan(src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].line, 3);
    }

    #[test]
    fn nested_block_comments_preserve_lines() {
        let src = "/* outer /* inner\n */ still a comment\nunwrap( */\nfn f(x: Option<u8>) { x.unwrap(); }\n";
        assert_blanking_preserves_shape(src);
        let v = scan(src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].line, 4);
    }

    #[test]
    fn long_unicode_char_escapes_are_fully_blanked() {
        // `\u{10FFFF}` is the longest char escape; a too-short lookahead
        // fails to recognise the literal and leaks its `{`/`}` bytes into
        // blanked code, where brace-matching passes would trip on them.
        for src in ["let c = '\\u{10FFFF}';\n", "let c = '\\u{1F600}';\n"] {
            assert_blanking_preserves_shape(src);
            let blanked = blank_noncode(src);
            assert!(
                !blanked.contains('{') && !blanked.contains('}'),
                "literal braces leaked: {blanked:?}"
            );
        }
    }

    #[test]
    fn trailing_backslash_does_not_overrun() {
        // Pathological EOF-in-string inputs must still blank to the same
        // byte length.
        for src in ["let s = \"abc\\", "let c = '\\", "\"\\"] {
            assert_blanking_preserves_shape(src);
        }
    }

    #[test]
    fn violations_to_json_escapes_and_orders() {
        let v = vec![
            Violation {
                file: PathBuf::from("a.rs"),
                line: 3,
                rule: Rule::TaintDsp,
                message: "bad \"quote\"".to_owned(),
            },
            Violation {
                file: PathBuf::from("b.rs"),
                line: 7,
                rule: Rule::NoPanic,
                message: "x".to_owned(),
            },
        ];
        let json = violations_to_json(&v);
        assert!(json.contains("\"rule\": \"taint-dsp\""));
        assert!(json.contains("\"line\": 3"));
        assert!(json.contains("bad \\\"quote\\\""));
        assert!(json.starts_with('[') && json.trim_end().ends_with(']'));
        assert_eq!(violations_to_json(&[]).trim(), "[]");
    }

    #[test]
    fn every_rule_has_a_name_and_explanation() {
        for &rule in Rule::ALL {
            assert_eq!(Rule::by_name(rule.name()), Some(rule));
            assert!(rule.explain().len() > 40, "thin rationale for {rule:?}");
        }
        assert_eq!(Rule::by_name("nope"), None);
    }

    #[test]
    fn lifetimes_do_not_open_char_literals() {
        // If 'a opened a literal, the rest of the file would be blanked and
        // the unwrap would go unseen.
        let v = scan("fn f<'a>(x: &'a Option<u8>) { x.unwrap(); }\n");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::NoPanic);
    }

    #[test]
    fn string_line_continuations_keep_line_numbers() {
        // A `\`-escaped newline inside a string must survive blanking:
        // otherwise every later violation is reported on the wrong line and
        // escape comments stop lining up.
        let v = scan("fn f(x: Option<u8>) {\n    let _s = \"a\\\nb\\\nc\";\n    x.unwrap();\n}\n");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 5, "{v:?}");
    }

    #[test]
    fn doc_sync_flags_unlisted_benches_only() {
        let book = "| E10 | `benches/e10_multi_client.rs` | `e10.*` |\n\
                    | E11 | `benches/e11_actor_scale.rs` | `e11.*` |\n";
        let benches = [
            "e10_multi_client.rs".to_owned(),
            "e11_actor_scale.rs".to_owned(),
            "e12_future_work.rs".to_owned(),
        ];
        let v = check_doc_sync(Path::new("ARCHITECTURE.md"), book, &benches);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::DocSync);
        assert!(v[0].message.contains("e12_future_work.rs"));
    }

    #[test]
    fn flags_adhoc_atomic_and_honours_escape() {
        let v = scan("fn f() { let c = AtomicU64::new(0); }\n");
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::AdhocAtomic);

        let v = scan("fn f() {\n    // lint: atomic — ticket allocator, not a metric\n    let c = AtomicU64::new(0);\n}\n");
        assert!(v.is_empty(), "{v:?}");

        // Loads/stores on an existing atomic are fine; only construction of
        // a new cell is policed.
        let v = scan("fn f(c: &AtomicU64) { c.load(Ordering::Relaxed); }\n");
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn metric_families_extracts_quoted_strings() {
        let src = "pub const A: &str = \"dsp.serve.requests\";\n\
                   // pub const COMMENTED: &str = \"nope\";\n\
                   pub const B: &str = \"sched.steps\";\n\
                   const PRIVATE: &str = \"hidden\";\n";
        let families = metric_families(src);
        assert_eq!(families, vec!["dsp.serve.requests", "sched.steps"]);
    }

    #[test]
    fn metric_sync_flags_undocumented_families_only() {
        let book = "| `dsp.serve.requests` | counter | per-shard serves |\n";
        let families = ["dsp.serve.requests".to_owned(), "sched.steps".to_owned()];
        let v = check_metric_sync(Path::new("ARCHITECTURE.md"), book, &families);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::DocSync);
        assert!(v[0].message.contains("sched.steps"));
    }

    #[test]
    fn escape_comment_covers_a_wrapped_justification() {
        let v = scan(
            "fn f(x: Option<u8>) {\n    // lint: infallible — a justification that\n    // wraps onto a second line.\n    x.unwrap();\n}\n",
        );
        assert!(v.is_empty(), "{v:?}");
    }
}
