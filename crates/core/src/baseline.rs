//! Comparison points of the evaluation.
//!
//! Three baselines back the experiments:
//!
//! * [`authorized_view_oracle`] — a tree-based (non-streaming) computation of
//!   the authorized view with the exact semantics of the streaming engine. It
//!   is the correctness oracle of the property tests **and** the evaluation
//!   component of the DOM baseline,
//! * [`DomBaseline`] — the "materialise on the terminal" strategy the paper
//!   rules out: fetch everything, decrypt everything, build a DOM, evaluate on
//!   it. Functionally equivalent, but it transfers and decrypts the whole
//!   document and its working set is the whole document — incompatible with a
//!   1 KiB SOE (experiment E9) and, worse, it runs *outside* the SOE,
//! * [`StaticEncryptionScheme`] — the server-side encryption approach of the
//!   related work ([1, 6] in the paper): the document is partitioned into
//!   equivalence classes of the access-control rules, each class encrypted
//!   under its own key, and users receive the keys of the classes they may
//!   read. Changing the rules then forces re-encryption and key redistribution
//!   (experiment E7), which is precisely the rigidity the SOE approach removes.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use sdds_crypto::SecretKey;
use sdds_xml::{Document, Event, NodeData, NodeId};

use crate::conflict::{resolve, AccessPolicy, Decision, DirectRule};
use crate::error::CoreError;
use crate::query::Query;
use crate::rule::{RuleSet, Subject};
use crate::secdoc::{decrypt_chunk, SecureDocument};
use crate::skipindex::decode::decode_all;
use sdds_card::CostLedger;

/// Computes, for every element of `doc`, the rules of `subject` applying
/// directly to it.
fn direct_rules_per_node(
    doc: &Document,
    rules: &RuleSet,
    subject: &Subject,
) -> HashMap<NodeId, Vec<DirectRule>> {
    let mut map: HashMap<NodeId, Vec<DirectRule>> = HashMap::new();
    for rule in rules.for_subject(subject) {
        for node in sdds_xpath::evaluate(doc, &rule.object) {
            map.entry(node).or_default().push(DirectRule {
                rule: rule.id,
                sign: rule.sign,
            });
        }
    }
    map
}

/// Tree-based computation of the authorized view (the oracle).
///
/// Semantics (identical to the streaming engine):
/// * an element is *delivered* when its resolved decision is Permit **and** it
///   lies in the query scope (the query scope of a node is "the query matches
///   the node or one of its ancestors"; without a query every node is in
///   scope),
/// * a delivered element keeps its attributes and its direct text,
/// * an element that is not delivered but has a delivered descendant appears
///   as bare structural scaffolding (tag only),
/// * everything else is absent from the view.
pub fn authorized_view_oracle(
    doc: &Document,
    rules: &RuleSet,
    subject: &Subject,
    query: Option<&Query>,
    policy: &AccessPolicy,
) -> Vec<Event> {
    let Some(root) = doc.root() else {
        return Vec::new();
    };
    let direct = direct_rules_per_node(doc, rules, subject);
    let query_matches: BTreeSet<NodeId> = match query {
        Some(q) => sdds_xpath::evaluate(doc, &q.path).into_iter().collect(),
        None => BTreeSet::new(),
    };

    // Top-down: decisions and scope.
    let mut delivered: BTreeMap<NodeId, bool> = BTreeMap::new();
    compute_delivered(
        doc,
        root,
        None,
        query.is_none(),
        &direct,
        &query_matches,
        policy,
        &mut delivered,
    );

    // Bottom-up: which elements are needed (delivered or ancestor of a
    // delivered element).
    let mut needed: BTreeSet<NodeId> = BTreeSet::new();
    for (&node, &is_delivered) in &delivered {
        if is_delivered {
            needed.insert(node);
            for ancestor in doc.ancestors(node) {
                needed.insert(ancestor);
            }
        }
    }

    let mut events = Vec::new();
    emit_view(doc, root, &delivered, &needed, &mut events);
    events
}

#[allow(clippy::too_many_arguments)]
fn compute_delivered(
    doc: &Document,
    node: NodeId,
    inherited: Option<Decision>,
    parent_in_scope: bool,
    direct: &HashMap<NodeId, Vec<DirectRule>>,
    query_matches: &BTreeSet<NodeId>,
    policy: &AccessPolicy,
    delivered: &mut BTreeMap<NodeId, bool>,
) {
    if !matches!(doc.data(node), NodeData::Element { .. }) {
        return;
    }
    let empty = Vec::new();
    let node_direct = direct.get(&node).unwrap_or(&empty);
    let decision = resolve(policy, node_direct, inherited);
    let in_scope = parent_in_scope || query_matches.contains(&node);
    delivered.insert(node, decision.is_permit() && in_scope);
    for child in doc.children(node) {
        compute_delivered(
            doc,
            *child,
            Some(decision),
            in_scope,
            direct,
            query_matches,
            policy,
            delivered,
        );
    }
}

fn emit_view(
    doc: &Document,
    node: NodeId,
    delivered: &BTreeMap<NodeId, bool>,
    needed: &BTreeSet<NodeId>,
    events: &mut Vec<Event>,
) {
    match doc.data(node) {
        NodeData::Text(text) => {
            let parent_delivered = doc
                .parent(node)
                .and_then(|p| delivered.get(&p).copied())
                .unwrap_or(false);
            if parent_delivered {
                events.push(Event::Text(text.clone()));
            }
        }
        NodeData::Element { name, attrs } => {
            if !needed.contains(&node) {
                return;
            }
            let is_delivered = delivered.get(&node).copied().unwrap_or(false);
            events.push(Event::Open {
                name: name.clone(),
                attrs: if is_delivered {
                    attrs.clone()
                } else {
                    Vec::new()
                },
            });
            for child in doc.children(node) {
                emit_view(doc, *child, delivered, needed, events);
            }
            events.push(Event::Close(name.clone()));
        }
    }
}

/// Result of a DOM-baseline run.
#[derive(Debug, Clone)]
pub struct DomBaselineReport {
    /// The authorized view (identical to the streaming engine's output).
    pub view: Vec<Event>,
    /// Cost counters: the whole document is transferred and decrypted.
    pub ledger: CostLedger,
    /// Working-set estimate of the materialised document, in bytes. This is
    /// what must fit in memory *wherever* the evaluation runs; it exceeds any
    /// smart-card RAM by orders of magnitude.
    pub materialized_bytes: usize,
}

/// The "fetch + decrypt + materialise + evaluate" baseline (experiment E9).
#[derive(Debug, Clone, Copy, Default)]
pub struct DomBaseline;

impl DomBaseline {
    /// Runs the baseline for `subject` over a secure document.
    pub fn run(
        document: &SecureDocument,
        key: &SecretKey,
        rules: &RuleSet,
        subject: &Subject,
        query: Option<&Query>,
        policy: &AccessPolicy,
    ) -> Result<DomBaselineReport, CoreError> {
        document.header.verify(key)?;
        let mut ledger = CostLedger::new();
        let mut plaintext = Vec::with_capacity(document.header.plaintext_len as usize);
        for index in 0..document.chunk_count() {
            // lint: infallible — `index` ranges over `chunk_count()`.
            let chunk = document.chunk(index).expect("index in range");
            let proof = document.proof(index)?;
            proof.verify(chunk, &document.header.merkle_root)?;
            ledger
                .channel
                .record_exchange(chunk.len() + proof.encode().len(), 0);
            ledger.record_hash(chunk.len());
            let clear = decrypt_chunk(key, &document.header, index as u32, chunk);
            ledger.record_decrypt(clear.len());
            plaintext.extend(clear);
        }
        let events = decode_all(&plaintext, document.header.recursive_bitmaps)?;
        ledger.record_events(events.len());
        let doc = Document::from_events(&events)?;
        // Rough but honest materialisation estimate: every event of the
        // document plus the per-node bookkeeping of the arena.
        let materialized_bytes = events.iter().map(Event::serialized_len).sum::<usize>()
            + doc.len() * 3 * std::mem::size_of::<usize>();
        let view = authorized_view_oracle(&doc, rules, subject, query, policy);
        let produced: usize = view.iter().map(Event::serialized_len).sum();
        ledger.channel.record_exchange(0, produced);
        Ok(DomBaselineReport {
            view,
            ledger,
            materialized_bytes,
        })
    }
}

// ---------------------------------------------------------------------------
// Server-side static encryption baseline
// ---------------------------------------------------------------------------

/// Cost of adapting a statically encrypted document to a policy change.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RuleChangeCost {
    /// Bytes that must be re-encrypted at the server (or by the owner).
    pub bytes_reencrypted: usize,
    /// Number of equivalence classes whose key changed.
    pub classes_rekeyed: usize,
    /// Number of (user, key) deliveries needed to redistribute keys.
    pub keys_redistributed: usize,
}

/// The key-per-equivalence-class encryption scheme of the related work.
#[derive(Debug, Clone)]
pub struct StaticEncryptionScheme {
    /// For every element (in document order), the set of subjects allowed to
    /// read it under the policy the scheme was built for.
    node_access: Vec<(NodeId, BTreeSet<Subject>, usize)>,
    /// Equivalence classes: distinct subject sets, each with its own key.
    classes: Vec<BTreeSet<Subject>>,
    /// Current key generation of each class (bumped when re-encrypted).
    key_generation: Vec<u64>,
}

impl StaticEncryptionScheme {
    /// Builds the scheme for `doc` under `rules` (all subjects of the rule
    /// set), using the same decision semantics as the SOE approach.
    pub fn build(doc: &Document, rules: &RuleSet, policy: &AccessPolicy) -> Self {
        let subjects = rules.subjects();
        let mut node_access: Vec<(NodeId, BTreeSet<Subject>, usize)> = Vec::new();
        let mut per_subject_delivered: Vec<(Subject, BTreeMap<NodeId, bool>)> = Vec::new();
        for subject in &subjects {
            let direct = direct_rules_per_node(doc, rules, subject);
            let mut delivered = BTreeMap::new();
            if let Some(root) = doc.root() {
                compute_delivered(
                    doc,
                    root,
                    None,
                    true,
                    &direct,
                    &BTreeSet::new(),
                    policy,
                    &mut delivered,
                );
            }
            per_subject_delivered.push((subject.clone(), delivered));
        }
        for node in doc.all_elements() {
            let readers: BTreeSet<Subject> = per_subject_delivered
                .iter()
                .filter(|(_, delivered)| delivered.get(&node).copied().unwrap_or(false))
                .map(|(s, _)| s.clone())
                .collect();
            let size = doc
                .subtree_events(node)
                .iter()
                .map(Event::serialized_len)
                .sum::<usize>()
                / doc.subtree_element_count(node).max(1);
            node_access.push((node, readers, size));
        }
        let mut classes: Vec<BTreeSet<Subject>> = Vec::new();
        for (_, readers, _) in &node_access {
            if !classes.contains(readers) {
                classes.push(readers.clone());
            }
        }
        let key_generation = vec![0; classes.len()];
        StaticEncryptionScheme {
            node_access,
            classes,
            key_generation,
        }
    }

    /// Number of equivalence classes (hence encryption keys) of the scheme.
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// Number of keys each subject must hold.
    pub fn keys_held_by(&self, subject: &Subject) -> usize {
        self.classes.iter().filter(|c| c.contains(subject)).count()
    }

    /// Applies a policy change: the document is re-analysed under `new_rules`
    /// and every element whose reader set changed forces its class to be
    /// re-encrypted and the new key to be redistributed to its readers.
    pub fn apply_rule_change(
        &mut self,
        doc: &Document,
        new_rules: &RuleSet,
        policy: &AccessPolicy,
    ) -> RuleChangeCost {
        let new_scheme = StaticEncryptionScheme::build(doc, new_rules, policy);
        let old: HashMap<NodeId, &BTreeSet<Subject>> = self
            .node_access
            .iter()
            .map(|(n, readers, _)| (*n, readers))
            .collect();
        let mut touched_classes: BTreeSet<usize> = BTreeSet::new();
        let mut bytes = 0usize;
        for (node, readers, size) in &new_scheme.node_access {
            let changed = old.get(node).map(|r| *r != readers).unwrap_or(true);
            if changed {
                bytes += size;
                if let Some(class_idx) = new_scheme.classes.iter().position(|c| c == readers) {
                    touched_classes.insert(class_idx);
                }
            }
        }
        let keys_redistributed: usize = touched_classes
            .iter()
            .map(|&c| new_scheme.classes[c].len())
            .sum();
        let cost = RuleChangeCost {
            bytes_reencrypted: bytes,
            classes_rekeyed: touched_classes.len(),
            keys_redistributed,
        };
        // Adopt the new layout.
        for &c in &touched_classes {
            if let Some(generation) = self.key_generation.get_mut(c) {
                *generation += 1;
            }
        }
        self.node_access = new_scheme.node_access;
        self.classes = new_scheme.classes;
        self.key_generation.resize(self.classes.len(), 0);
        cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::{EvaluatorConfig, StreamingEvaluator};
    use crate::rule::Sign;
    use crate::secdoc::SecureDocumentBuilder;
    use sdds_xml::generator::{self, GeneratorConfig, HospitalProfile};
    use sdds_xml::{writer, Parser};

    fn rules() -> RuleSet {
        RuleSet::parse(
            "+, doctor, //patient\n\
             -, doctor, //patient/ssn\n\
             +, secretary, //patient/name\n\
             +, researcher, //diagnosis",
        )
        .unwrap()
    }

    fn doc() -> Document {
        generator::hospital(
            &HospitalProfile {
                patients: 4,
                ..HospitalProfile::default()
            },
            &GeneratorConfig::default(),
        )
    }

    #[test]
    fn oracle_matches_streaming_evaluator_on_the_medical_folder() {
        let doc = doc();
        let events = Parser::parse_all(&doc.to_xml()).unwrap();
        for subject in ["doctor", "secretary", "researcher", "nobody"] {
            let config = EvaluatorConfig::new(rules(), subject);
            let (streaming, _) = StreamingEvaluator::evaluate_all(&config, &events).unwrap();
            let oracle = authorized_view_oracle(
                &doc,
                &rules(),
                &Subject::new(subject),
                None,
                &AccessPolicy::paper(),
            );
            assert_eq!(
                writer::to_string(&streaming),
                writer::to_string(&oracle),
                "streaming and oracle views differ for {subject}"
            );
        }
    }

    #[test]
    fn oracle_respects_queries() {
        let doc = doc();
        let query = Query::parse("//patient/name").unwrap();
        let view = authorized_view_oracle(
            &doc,
            &rules(),
            &Subject::new("doctor"),
            Some(&query),
            &AccessPolicy::paper(),
        );
        let text = writer::to_string(&view);
        assert!(text.contains("<name>"));
        assert!(!text.contains("<report>"));
        assert!(!text.contains("<ssn>"));
    }

    #[test]
    fn oracle_on_empty_document_is_empty() {
        let empty = Document::new();
        assert!(authorized_view_oracle(
            &empty,
            &rules(),
            &Subject::new("doctor"),
            None,
            &AccessPolicy::paper()
        )
        .is_empty());
    }

    #[test]
    fn dom_baseline_is_functionally_equivalent_but_pays_full_cost() {
        let doc = doc();
        let key = SecretKey::derive(b"community", "documents");
        let secure = SecureDocumentBuilder::new("folder", key.clone()).build(&doc);
        let subject = Subject::new("secretary");
        let report = DomBaseline::run(
            &secure,
            &key,
            &rules(),
            &subject,
            None,
            &AccessPolicy::paper(),
        )
        .unwrap();
        // Same view as the oracle (and hence as the streaming engine).
        let oracle = authorized_view_oracle(&doc, &rules(), &subject, None, &AccessPolicy::paper());
        assert_eq!(writer::to_string(&report.view), writer::to_string(&oracle));
        // Full transfer and decryption.
        assert_eq!(
            report.ledger.bytes_decrypted as u64,
            secure.header.plaintext_len
        );
        assert!(report.ledger.channel.bytes_to_card as u64 >= secure.header.plaintext_len);
        assert_eq!(report.ledger.bytes_skipped, 0);
        // The materialised working set dwarfs a 1 KiB card RAM.
        assert!(report.materialized_bytes > 2 * 1024);
        // Tampering is still detected.
        let wrong = SecretKey::derive(b"other", "documents");
        assert!(DomBaseline::run(
            &secure,
            &wrong,
            &rules(),
            &subject,
            None,
            &AccessPolicy::paper()
        )
        .is_err());
    }

    #[test]
    fn static_encryption_builds_equivalence_classes() {
        let doc = doc();
        let scheme = StaticEncryptionScheme::build(&doc, &rules(), &AccessPolicy::paper());
        // At least: {doctor}, {doctor, secretary} (names), {doctor, researcher}
        // (diagnosis), {} (ssn, root scaffolding...).
        assert!(scheme.class_count() >= 3);
        assert!(scheme.keys_held_by(&Subject::new("doctor")) >= 2);
        assert!(scheme.keys_held_by(&Subject::new("secretary")) >= 1);
        assert_eq!(scheme.keys_held_by(&Subject::new("nobody")), 0);
    }

    #[test]
    fn rule_changes_force_reencryption_in_the_static_scheme_only() {
        let doc = doc();
        let policy = AccessPolicy::paper();
        let mut scheme = StaticEncryptionScheme::build(&doc, &rules(), &policy);

        // The same change, seen by the SOE approach, costs nothing on the
        // document side: only a new protected rule set is shipped.
        let mut new_rules = rules();
        new_rules
            .push(Sign::Deny, "secretary", "//patient/name")
            .unwrap();

        let cost = scheme.apply_rule_change(&doc, &new_rules, &policy);
        assert!(
            cost.bytes_reencrypted > 0,
            "reader sets of name elements changed"
        );
        assert!(cost.classes_rekeyed >= 1);
        assert!(cost.keys_redistributed >= 1);

        // An identical policy produces no cost.
        let cost = scheme.apply_rule_change(&doc, &new_rules, &policy);
        assert_eq!(cost, RuleChangeCost::default());
    }
}
