//! Shim `Mutex` / `RwLock` / `Condvar`.
//!
//! Each shim wraps the real `std` primitive plus a model object id. Inside a
//! model run the scheduler grants the lock *first* (`Ctx::acquire`), so the
//! real lock underneath is always uncontended: model threads never block on
//! OS primitives, only on the scheduler, which is what makes every
//! interleaving explorable and every deadlock detectable. Outside a model run
//! (`current_ctx()` is `None`) the shims degrade to plain `std` behaviour.
//!
//! Poisoning is swallowed: a model thread that panics fails the whole
//! execution anyway, so guards recover the inner value instead of
//! propagating `PoisonError` across threads.

use std::sync::LockResult;

pub use std::sync::Arc;

use crate::exec::{current_ctx, next_object_id, Access, Ctx};

fn unpoison<T>(result: Result<T, std::sync::PoisonError<T>>) -> T {
    result.unwrap_or_else(|poisoned| poisoned.into_inner())
}

// ---------------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------------

/// Model-checked stand-in for [`std::sync::Mutex`].
#[derive(Debug)]
pub struct Mutex<T: ?Sized> {
    id: u64,
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            id: next_object_id(),
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Acquires the mutex, blocking the model thread until it is free.
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        let ctx = current_ctx();
        if let Some(ctx) = &ctx {
            ctx.acquire(self.id, Access::Exclusive);
        }
        // With the model grant held the real lock is uncontended; without a
        // model run this is an ordinary blocking lock.
        let inner = unpoison(self.inner.lock());
        Ok(MutexGuard {
            lock: self,
            inner: Some(inner),
            ctx,
        })
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> LockResult<T> {
        Ok(unpoison(self.inner.into_inner()))
    }

    /// Returns a mutable reference to the inner value (no locking needed:
    /// `&mut self` proves exclusivity).
    pub fn get_mut(&mut self) -> LockResult<&mut T> {
        Ok(unpoison(self.inner.get_mut()))
    }
}

// `derive(Default)` would bypass `new()` and hand every defaulted lock the
// same object id; the model must see distinct ids per lock.
impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

/// Guard returned by [`Mutex::lock`].
#[derive(Debug)]
pub struct MutexGuard<'a, T: ?Sized> {
    lock: &'a Mutex<T>,
    inner: Option<std::sync::MutexGuard<'a, T>>,
    ctx: Option<Ctx>,
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // lint: infallible — `inner` is `Some` from construction until drop.
        self.inner.as_ref().expect("guard still holds the lock")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // lint: infallible — `inner` is `Some` from construction until drop.
        self.inner.as_mut().expect("guard still holds the lock")
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Release the real lock before the model grant, so the next grantee
        // finds it free.
        self.inner = None;
        if let Some(ctx) = &self.ctx {
            ctx.release(self.lock.id);
        }
    }
}

// ---------------------------------------------------------------------------
// RwLock
// ---------------------------------------------------------------------------

/// Model-checked stand-in for [`std::sync::RwLock`].
#[derive(Debug)]
pub struct RwLock<T: ?Sized> {
    id: u64,
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock holding `value`.
    pub fn new(value: T) -> Self {
        RwLock {
            id: next_object_id(),
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Acquires the lock shared.
    pub fn read(&self) -> LockResult<RwLockReadGuard<'_, T>> {
        let ctx = current_ctx();
        if let Some(ctx) = &ctx {
            ctx.acquire(self.id, Access::Shared);
        }
        let inner = unpoison(self.inner.read());
        Ok(RwLockReadGuard {
            lock: self,
            inner: Some(inner),
            ctx,
        })
    }

    /// Acquires the lock exclusively.
    pub fn write(&self) -> LockResult<RwLockWriteGuard<'_, T>> {
        let ctx = current_ctx();
        if let Some(ctx) = &ctx {
            ctx.acquire(self.id, Access::Exclusive);
        }
        let inner = unpoison(self.inner.write());
        Ok(RwLockWriteGuard {
            lock: self,
            inner: Some(inner),
            ctx,
        })
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> LockResult<T> {
        Ok(unpoison(self.inner.into_inner()))
    }

    /// Returns a mutable reference to the inner value.
    pub fn get_mut(&mut self) -> LockResult<&mut T> {
        Ok(unpoison(self.inner.get_mut()))
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

/// Guard returned by [`RwLock::read`].
#[derive(Debug)]
pub struct RwLockReadGuard<'a, T: ?Sized> {
    lock: &'a RwLock<T>,
    inner: Option<std::sync::RwLockReadGuard<'a, T>>,
    ctx: Option<Ctx>,
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // lint: infallible — `inner` is `Some` from construction until drop.
        self.inner.as_ref().expect("guard still holds the lock")
    }
}

impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        self.inner = None;
        if let Some(ctx) = &self.ctx {
            ctx.release(self.lock.id);
        }
    }
}

/// Guard returned by [`RwLock::write`].
#[derive(Debug)]
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    lock: &'a RwLock<T>,
    inner: Option<std::sync::RwLockWriteGuard<'a, T>>,
    ctx: Option<Ctx>,
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // lint: infallible — `inner` is `Some` from construction until drop.
        self.inner.as_ref().expect("guard still holds the lock")
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // lint: infallible — `inner` is `Some` from construction until drop.
        self.inner.as_mut().expect("guard still holds the lock")
    }
}

impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        self.inner = None;
        if let Some(ctx) = &self.ctx {
            ctx.release(self.lock.id);
        }
    }
}

// ---------------------------------------------------------------------------
// Condvar
// ---------------------------------------------------------------------------

/// Model-checked stand-in for [`std::sync::Condvar`].
#[derive(Debug)]
pub struct Condvar {
    id: u64,
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub fn new() -> Self {
        Condvar {
            id: next_object_id(),
            inner: std::sync::Condvar::new(),
        }
    }

    /// Releases `guard`'s mutex and parks until notified, then re-acquires.
    pub fn wait<'a, T>(&self, mut guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        // alloc: amortized — clones the `Option<Ctx>` scheduler handle (refcount bump); the production path takes the `None` branch.
        match guard.ctx.clone() {
            None => {
                // lint: infallible — `inner` is `Some` until the guard drops.
                let std_guard = guard.inner.take().expect("guard still holds the lock");
                guard.inner = Some(unpoison(self.inner.wait(std_guard)));
                Ok(guard)
            }
            Some(ctx) => {
                let lock = guard.lock;
                // From the model's point of view this is atomic: `cv_wait`
                // queues this thread on the condvar before the scheduler can
                // hand the released lock to a notifier.
                guard.inner = None;
                ctx.release(lock.id);
                ctx.cv_wait(self.id);
                ctx.acquire(lock.id, Access::Exclusive);
                guard.inner = Some(unpoison(lock.inner.lock()));
                Ok(guard)
            }
        }
    }

    /// Wakes one parked waiter (FIFO inside a model run).
    pub fn notify_one(&self) {
        match current_ctx() {
            None => self.inner.notify_one(),
            Some(ctx) => ctx.cv_notify(self.id, false),
        }
    }

    /// Wakes every parked waiter.
    pub fn notify_all(&self) {
        match current_ctx() {
            None => self.inner.notify_all(),
            Some(ctx) => ctx.cv_notify(self.id, true),
        }
    }
}

// Same rationale as `Mutex`: every condvar needs its own object id.
impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}
