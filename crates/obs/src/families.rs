//! The single naming authority for metric families.
//!
//! Every family the workspace registers lives here as a `pub const`, so the
//! instrumentation call sites cannot drift apart on spelling and the
//! `doc-sync` lint rule can hold ARCHITECTURE.md's metric table to exactly
//! this list: each string constant in this file must appear in the book.

/// Requests served, per shard (the per-shard "hit" count).
pub const SERVE_REQUESTS: &str = "dsp.serve.requests";
/// Total payload bytes served, per shard.
pub const SERVE_BYTES: &str = "dsp.serve.bytes";
/// Chunk requests served, per shard.
pub const SERVE_CHUNKS: &str = "dsp.serve.chunks";
/// Rule blobs served, per shard.
pub const SERVE_RULE_BLOBS: &str = "dsp.serve.rule_blobs";
/// Bytes of rule blobs served, per shard (a subset of `dsp.serve.bytes`).
pub const SERVE_RULE_BYTES: &str = "dsp.serve.rule_bytes";
/// Requests answered from a pinned replica instead of the home shard.
pub const SERVE_REPLICA_ROUTES: &str = "dsp.serve.replica_routes";
/// Stale-revision rejections, per shard.
pub const SERVE_STALE: &str = "dsp.serve.stale_revisions";
/// Wall-clock latency of one `ShardedStore::serve` call, in nanoseconds.
pub const SERVE_LATENCY: &str = "dsp.serve.latency_ns";

/// Typed failures, labelled `error=<kind>` (see the `error_*` constants).
pub const ERRORS: &str = "dsp.errors";

/// Thread-engine run queue depth (current + high-water mark).
pub const SCHED_QUEUE_DEPTH: &str = "sched.queue_depth";
/// Session quanta executed by the thread engine.
pub const SCHED_STEPS: &str = "sched.steps";
/// Wall-clock latency of one session step under the scheduler, nanoseconds.
pub const SCHED_STEP_LATENCY: &str = "sched.step_latency_ns";

/// Actor dispatches (mailbox claims that ran a session).
pub const ACTOR_DISPATCHES: &str = "actors.dispatches";
/// Dispatches a worker claimed from another worker's run queue.
pub const ACTOR_STEALS: &str = "actors.steals";
/// Actors parked after a dispatch drained their mailbox.
pub const ACTOR_PARKS: &str = "actors.parks";
/// Sends that found the actor parked and rescheduled it.
pub const ACTOR_UNPARKS: &str = "actors.unparks";
/// Condvar broadcasts that woke the worker pool.
pub const ACTOR_WAKES: &str = "actors.wakes";
/// Times a sender blocked on a full mailbox (backpressure stalls).
pub const ACTOR_MAILBOX_STALLS: &str = "actors.mailbox_stalls";
/// Wall-clock latency of one actor dispatch, in nanoseconds.
pub const ACTOR_DISPATCH_LATENCY: &str = "actors.dispatch_latency_ns";

/// APDU round-trips between terminal and card (after batching).
pub const SESSION_APDUS: &str = "session.apdu_round_trips";
/// Bytes crossing the terminal/card wire, both directions.
pub const SESSION_WIRE_BYTES: &str = "session.wire_bytes";
/// Authorized events delivered to the client view.
pub const SESSION_EVENTS: &str = "session.events_delivered";

/// `ERRORS` label for a stale pinned revision.
pub const ERROR_STALE_REVISION: &str = "error=stale_revision";
/// `ERRORS` label for a document id the store does not hold.
pub const ERROR_NOT_FOUND: &str = "error=not_found";
/// `ERRORS` label for a subject with no rule blob on the document.
pub const ERROR_NO_RULES: &str = "error=no_rules_for_subject";
/// `ERRORS` label for a send into a retired actor mailbox.
pub const ERROR_MAILBOX_CLOSED: &str = "error=mailbox_closed";
