//! A lightweight Rust *item* parser for the trust-boundary analyzer.
//!
//! This is deliberately not a full grammar: it recognizes the item heads the
//! taint rules need — `fn` signatures, `struct`/`enum` fields, `impl` blocks
//! (self type + trait), `use` items, `type` aliases, `const`/`static`
//! declarations — over `blank_noncode`-blanked text, and skips function
//! bodies entirely. Expression-level analysis is out of scope by design: the
//! trust argument is about what *types* appear at item boundaries, which is
//! exactly what signatures, fields, and re-exports expose.
//!
//! Every item records its 1-based line, whether it sits inside a
//! `#[cfg(test)]` region, its `#[derive(…)]` list, the enclosing `impl`
//! context (self type and trait, if any), and the nearest `// taint: …`
//! annotation found on the item's own line or in the contiguous
//! comment/attribute block directly above it.

use crate::{blank_noncode, test_regions};

/// What kind of item a parsed [`Item`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ItemKind {
    /// A free function or method (`fn`).
    Fn,
    /// A `struct` declaration.
    Struct,
    /// An `enum` declaration.
    Enum,
    /// A `trait` declaration (its methods are separate [`ItemKind::Fn`]s).
    Trait,
    /// A `type` alias or associated-type declaration.
    TypeAlias,
    /// A `use` item (imports and `pub use` re-exports).
    Use,
    /// An `impl` block header.
    Impl,
    /// A `const` or `static` item.
    Const,
}

/// A `// taint: …` annotation attached to an item.
#[derive(Debug, Clone)]
pub struct Annotation {
    /// 1-based line the annotation comment is on.
    pub line: usize,
    /// Text after `taint:`, trimmed (e.g. `source — decrypts one chunk`).
    pub text: String,
}

/// The captured body of a fn item, for expression-level passes (the
/// call-graph extractor in [`crate::calls`]). The text is the
/// `blank_noncode`-blanked span from the opening `{` to past the matching
/// `}`, so string/char contents can never fake a call site, and offsets
/// within it map back to file lines via [`FnBody::line_at`].
#[derive(Debug, Clone)]
pub struct FnBody {
    /// 1-based line of the opening `{`.
    pub line: usize,
    /// Blanked body text, including both braces.
    pub text: String,
}

impl FnBody {
    /// 1-based file line of byte `offset` within [`FnBody::text`].
    pub fn line_at(&self, offset: usize) -> usize {
        self.line
            + self.text[..offset.min(self.text.len())]
                .bytes()
                .filter(|&b| b == b'\n')
                .count()
    }

    /// 1-based file line of the closing `}` — the last line the fn spans.
    pub fn end_line(&self) -> usize {
        self.line_at(self.text.len())
    }
}

/// One parsed item head.
#[derive(Debug, Clone)]
pub struct Item {
    /// Which kind of item this is.
    pub kind: ItemKind,
    /// Item name (`fn`/`struct`/`enum`/`trait`/`type`/`const` identifier;
    /// the full path text for `use`; the self-type text for `impl`).
    pub name: String,
    /// 1-based line of the item keyword.
    pub line: usize,
    /// Whether the item is `pub` (any visibility restriction counts).
    pub is_pub: bool,
    /// Whether the item lies inside a `#[cfg(test)]` region.
    pub in_test: bool,
    /// Head text: fn signature up to the body, struct/enum/impl header,
    /// full `use`/`type`/`const` declaration.
    pub signature: String,
    /// For structs/enums: `(line, type text)` per field or variant payload.
    pub field_types: Vec<(usize, String)>,
    /// For braced structs: `(name, type text)` per named field — the
    /// receiver-typing index the call-graph resolver uses to pin
    /// `self.field.m(…)` receivers to their declared types.
    pub fields: Vec<(String, String)>,
    /// Traits listed in `#[derive(…)]` attributes on the item.
    pub derives: Vec<String>,
    /// For fns/aliases inside an `impl` or `trait` block: the self type.
    pub self_type: Option<String>,
    /// For `impl Trait for Type` blocks (and fns inside them): the trait.
    pub impl_trait: Option<String>,
    /// Nearest `// taint: …` annotation, if any.
    pub annotation: Option<Annotation>,
    /// For fns with a body: the blanked body span (see [`FnBody`]).
    pub body: Option<FnBody>,
}

struct BlockCtx {
    self_type: Option<String>,
    impl_trait: Option<String>,
    end: usize,
}

struct Parser<'a> {
    code: &'a str,
    bytes: &'a [u8],
    raw_lines: Vec<&'a str>,
    line_starts: Vec<usize>,
    test_mask: Vec<(usize, usize)>,
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

impl<'a> Parser<'a> {
    fn line_of(&self, offset: usize) -> usize {
        match self.line_starts.binary_search(&offset) {
            Ok(i) => i + 1,
            Err(i) => i,
        }
    }

    fn in_test(&self, offset: usize) -> bool {
        self.test_mask
            .iter()
            .any(|&(start, end)| offset >= start && offset < end)
    }

    fn ident_at(&self, i: usize) -> (&'a str, usize) {
        let mut end = i;
        while end < self.bytes.len() && is_ident_byte(self.bytes[end]) {
            end += 1;
        }
        (&self.code[i..end], end)
    }

    /// Scans forward from `i` to the first occurrence of a byte in `stops`
    /// at zero `(`/`[` depth (and zero `<` depth when `angles` is set).
    /// Returns the offset, or the end of input.
    fn scan_to(&self, mut i: usize, stops: &[u8], angles: bool) -> usize {
        let mut paren = 0usize;
        let mut angle = 0usize;
        while i < self.bytes.len() {
            let b = self.bytes[i];
            if paren == 0 && (!angles || angle == 0) && stops.contains(&b) {
                return i;
            }
            match b {
                b'(' | b'[' => paren += 1,
                b')' | b']' => paren = paren.saturating_sub(1),
                b'<' if angles => angle += 1,
                b'>' if angles && i > 0 && self.bytes[i - 1] != b'-' => {
                    angle = angle.saturating_sub(1);
                }
                _ => {}
            }
            i += 1;
        }
        i
    }

    /// Offset just past the `}` matching the `{` at `open`.
    fn matching_brace(&self, open: usize) -> usize {
        let mut depth = 0usize;
        let mut i = open;
        while i < self.bytes.len() {
            match self.bytes[i] {
                b'{' => depth += 1,
                b'}' => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        return i + 1;
                    }
                }
                _ => {}
            }
            i += 1;
        }
        i
    }

    /// Looks for a `// taint:` annotation on the raw text of `line` or in
    /// the contiguous comment/attribute block directly above it.
    fn annotation_for(&self, line: usize) -> Option<Annotation> {
        let grab = |l: usize| -> Option<Annotation> {
            let raw = self.raw_lines.get(l.checked_sub(1)?)?;
            let at = raw.find("taint:")?;
            // Only comment-carried annotations count.
            raw[..at].contains("//").then(|| Annotation {
                line: l,
                text: raw[at + "taint:".len()..].trim().to_owned(),
            })
        };
        if let Some(found) = grab(line) {
            return Some(found);
        }
        let mut l = line;
        while l > 1 {
            l -= 1;
            let above = self.raw_lines.get(l - 1).map_or("", |s| s.trim_start());
            if !(above.starts_with("//") || above.starts_with('#')) {
                break;
            }
            if let Some(found) = grab(l) {
                return Some(found);
            }
        }
        None
    }

    /// Splits `body` (offsets relative to `base`) at top-level commas.
    fn split_commas(&self, base: usize, body: &str) -> Vec<(usize, String)> {
        let mut parts = Vec::new();
        let mut depth = 0i32;
        let mut angle = 0i32;
        let mut start = 0usize;
        for (i, b) in body.bytes().enumerate() {
            match b {
                b'(' | b'[' | b'{' => depth += 1,
                b')' | b']' | b'}' => depth -= 1,
                b'<' => angle += 1,
                b'>' if i > 0 && body.as_bytes()[i - 1] != b'-' => angle -= 1,
                b',' if depth == 0 && angle <= 0 => {
                    parts.push((base + start, body[start..i].to_owned()));
                    start = i + 1;
                }
                _ => {}
            }
        }
        parts.push((base + start, body[start..].to_owned()));
        parts
            .into_iter()
            .filter(|(_, t)| !t.trim().is_empty())
            .collect()
    }

    /// Extracts `(line, type text)` pairs from one struct-like field list
    /// (the text between `{` and `}`): each entry is `[pub] name: Type`.
    fn braced_fields(&self, base: usize, body: &str) -> Vec<(usize, String)> {
        self.split_commas(base, body)
            .into_iter()
            .filter_map(|(off, entry)| {
                let colon = top_level_colon(&entry)?;
                let line = self.line_of(off + colon);
                Some((line, entry[colon + 1..].trim().to_owned()))
            })
            .collect()
    }

    /// Extracts `(name, type text)` pairs from one braced struct body: the
    /// last identifier before the top-level `:` is the field name (skipping
    /// visibility modifiers and attributes).
    fn named_fields(&self, base: usize, body: &str) -> Vec<(String, String)> {
        self.split_commas(base, body)
            .into_iter()
            .filter_map(|(_, entry)| {
                let colon = top_level_colon(&entry)?;
                let name = entry[..colon]
                    .rsplit(|c: char| !c.is_ascii_alphanumeric() && c != '_')
                    .find(|s| !s.is_empty())?
                    .to_owned();
                Some((name, entry[colon + 1..].trim().to_owned()))
            })
            .collect()
    }

    /// Extracts payload types from one enum variant's text.
    fn variant_payloads(&self, base: usize, variant: &str) -> Vec<(usize, String)> {
        if let Some(open) = variant.find('(') {
            let close = variant.rfind(')').unwrap_or(variant.len());
            return self
                .split_commas(base + open + 1, &variant[open + 1..close])
                .into_iter()
                .map(|(off, t)| (self.line_of(off), t.trim().to_owned()))
                .collect();
        }
        if let Some(open) = variant.find('{') {
            let close = variant.rfind('}').unwrap_or(variant.len());
            return self.braced_fields(base + open + 1, &variant[open + 1..close]);
        }
        Vec::new()
    }
}

/// Finds the first `:` in `entry` at zero bracket/angle depth that is not
/// part of `::`, returning its byte offset.
fn top_level_colon(entry: &str) -> Option<usize> {
    let bytes = entry.as_bytes();
    let mut depth = 0i32;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'(' | b'[' | b'{' | b'<' => depth += 1,
            b')' | b']' | b'}' => depth -= 1,
            b'>' if i > 0 && bytes[i - 1] != b'-' => depth -= 1,
            b':' if depth == 0 => {
                if bytes.get(i + 1) == Some(&b':') {
                    i += 2;
                    continue;
                }
                return Some(i);
            }
            _ => {}
        }
        i += 1;
    }
    None
}

/// Parses the item heads of one source file. `raw` is the original text;
/// blanking and `#[cfg(test)]` masking happen internally so line numbers in
/// the returned items always match the raw file.
pub fn parse_items(raw: &str) -> Vec<Item> {
    let code = blank_noncode(raw);
    let test_mask = test_regions(&code);
    let mut line_starts = vec![0usize];
    for (i, b) in code.bytes().enumerate() {
        if b == b'\n' {
            line_starts.push(i + 1);
        }
    }
    let p = Parser {
        code: &code,
        bytes: code.as_bytes(),
        raw_lines: raw.lines().collect(),
        line_starts,
        test_mask,
    };

    let mut items = Vec::new();
    let mut blocks: Vec<BlockCtx> = Vec::new();
    let mut pending_pub = false;
    let mut pending_derives: Vec<String> = Vec::new();
    let mut i = 0usize;
    while i < p.bytes.len() {
        while blocks.last().is_some_and(|b| b.end <= i) {
            blocks.pop();
        }
        let b = p.bytes[i];
        if b == b'#' && p.bytes.get(i + 1) == Some(&b'[') {
            // Attribute: capture derive lists, skip the balanced brackets.
            let end = p.scan_to(i + 2, b"]", false);
            let attr = &p.code[i + 2..end.min(p.code.len())];
            let trimmed = attr.trim();
            if let Some(list) = trimmed
                .strip_prefix("derive")
                .and_then(|r| r.trim_start().strip_prefix('('))
            {
                let list = list.strip_suffix(')').unwrap_or(list);
                pending_derives.extend(
                    list.split(',')
                        .map(|d| d.trim().to_owned())
                        .filter(|d| !d.is_empty()),
                );
            }
            i = end + 1;
            continue;
        }
        if !is_ident_start(b) || (i > 0 && is_ident_byte(p.bytes[i - 1])) {
            i += 1;
            continue;
        }
        let (word, wend) = p.ident_at(i);
        let at = i;
        match word {
            "pub" => {
                pending_pub = true;
                i = wend;
                // Skip a visibility restriction like `pub(crate)`.
                let next = p.bytes[i..].iter().position(|&c| !c.is_ascii_whitespace());
                if let Some(off) = next {
                    if p.bytes[i + off] == b'(' {
                        i = p.scan_to(i + off + 1, b")", false) + 1;
                    }
                }
                continue;
            }
            // Modifier keywords between visibility and the item keyword.
            "unsafe" | "async" | "extern" | "default" | "crate" => {
                i = wend;
                continue;
            }
            "fn" => {
                let (name, nend) = p.ident_at(p.scan_ident_start(wend));
                let sig_end = p.scan_to(nend, b"{;", false);
                let ctx = blocks.last();
                // Capture the body span for the call-graph pass, then skip
                // past it: items never hide inside fn bodies here, and the
                // expression-level analysis happens downstream over the
                // captured (blanked) text.
                let (body, next) = if p.bytes.get(sig_end) == Some(&b'{') {
                    let close = p.matching_brace(sig_end);
                    (
                        Some(FnBody {
                            line: p.line_of(sig_end),
                            text: p.code[sig_end..close].to_owned(),
                        }),
                        close,
                    )
                } else {
                    (None, sig_end + 1)
                };
                items.push(Item {
                    kind: ItemKind::Fn,
                    name: name.to_owned(),
                    line: p.line_of(at),
                    is_pub: pending_pub,
                    in_test: p.in_test(at),
                    signature: p.code[at..sig_end].trim().to_owned(),
                    field_types: Vec::new(),
                    fields: Vec::new(),
                    derives: std::mem::take(&mut pending_derives),
                    self_type: ctx.and_then(|c| c.self_type.clone()),
                    impl_trait: ctx.and_then(|c| c.impl_trait.clone()),
                    annotation: p.annotation_for(p.line_of(at)),
                    body,
                });
                pending_pub = false;
                i = next;
                continue;
            }
            "struct" | "enum" | "union" => {
                let (name, nend) = p.ident_at(p.scan_ident_start(wend));
                let head_end = p.scan_to(nend, b"{(;", true);
                let kind = if word == "enum" {
                    ItemKind::Enum
                } else {
                    ItemKind::Struct
                };
                let mut field_types = Vec::new();
                let mut fields = Vec::new();
                let end = match p.bytes.get(head_end) {
                    Some(&b'(') => {
                        let close = p.scan_to(head_end + 1, b")", false);
                        for (off, t) in p.split_commas(head_end + 1, &p.code[head_end + 1..close]) {
                            let ty = strip_vis(t.trim());
                            field_types.push((p.line_of(off), ty.trim().to_owned()));
                        }
                        p.scan_to(close, b";", false) + 1
                    }
                    Some(&b'{') => {
                        let close = p.matching_brace(head_end);
                        let body = &p.code[head_end + 1..close.saturating_sub(1)];
                        if kind == ItemKind::Enum {
                            for (off, variant) in p.split_commas(head_end + 1, body) {
                                field_types.extend(p.variant_payloads(off, &variant));
                            }
                        } else {
                            field_types.extend(p.braced_fields(head_end + 1, body));
                            fields = p.named_fields(head_end + 1, body);
                        }
                        close
                    }
                    _ => head_end + 1,
                };
                items.push(Item {
                    kind,
                    name: name.to_owned(),
                    line: p.line_of(at),
                    is_pub: pending_pub,
                    in_test: p.in_test(at),
                    signature: p.code[at..head_end].trim().to_owned(),
                    field_types,
                    fields,
                    derives: std::mem::take(&mut pending_derives),
                    self_type: None,
                    impl_trait: None,
                    annotation: p.annotation_for(p.line_of(at)),
                    body: None,
                });
                pending_pub = false;
                i = end;
                continue;
            }
            "impl" => {
                // Skip the generic parameter list right after `impl`, then
                // read the header up to `{`.
                let mut j = wend;
                if let Some(off) = p.bytes[j..].iter().position(|&c| !c.is_ascii_whitespace()) {
                    if p.bytes[j + off] == b'<' {
                        let mut depth = 0i32;
                        let mut k = j + off;
                        while k < p.bytes.len() {
                            match p.bytes[k] {
                                b'<' => depth += 1,
                                b'>' => {
                                    depth -= 1;
                                    if depth == 0 {
                                        break;
                                    }
                                }
                                _ => {}
                            }
                            k += 1;
                        }
                        j = (k + 1).min(p.bytes.len());
                    }
                }
                let open = p.scan_to(j, b"{", false);
                let header = p.code[j..open].trim();
                let header = header
                    .split_once(" where ")
                    .map_or(header, |(h, _)| h)
                    .trim();
                let (impl_trait, self_type) = match split_impl_for(header) {
                    Some((t, s)) => (Some(t.trim().to_owned()), s.trim().to_owned()),
                    None => (None, header.to_owned()),
                };
                items.push(Item {
                    kind: ItemKind::Impl,
                    name: self_type.clone(),
                    line: p.line_of(at),
                    is_pub: false,
                    in_test: p.in_test(at),
                    signature: p.code[at..open].trim().to_owned(),
                    field_types: Vec::new(),
                    fields: Vec::new(),
                    derives: std::mem::take(&mut pending_derives),
                    self_type: Some(self_type.clone()),
                    impl_trait: impl_trait.clone(),
                    annotation: p.annotation_for(p.line_of(at)),
                    body: None,
                });
                blocks.push(BlockCtx {
                    self_type: Some(self_type),
                    impl_trait,
                    end: p.matching_brace(open),
                });
                pending_pub = false;
                i = open + 1;
                continue;
            }
            "trait" => {
                let (name, nend) = p.ident_at(p.scan_ident_start(wend));
                let open = p.scan_to(nend, b"{;", true);
                items.push(Item {
                    kind: ItemKind::Trait,
                    name: name.to_owned(),
                    line: p.line_of(at),
                    is_pub: pending_pub,
                    in_test: p.in_test(at),
                    signature: p.code[at..open].trim().to_owned(),
                    field_types: Vec::new(),
                    fields: Vec::new(),
                    derives: std::mem::take(&mut pending_derives),
                    self_type: None,
                    impl_trait: None,
                    annotation: p.annotation_for(p.line_of(at)),
                    body: None,
                });
                pending_pub = false;
                if p.bytes.get(open) == Some(&b'{') {
                    blocks.push(BlockCtx {
                        self_type: Some(name.to_owned()),
                        impl_trait: None,
                        end: p.matching_brace(open),
                    });
                    i = open + 1;
                } else {
                    i = open + 1;
                }
                continue;
            }
            "use" => {
                let end = p.scan_to(wend, b";", false);
                items.push(Item {
                    kind: ItemKind::Use,
                    name: p.code[wend..end].trim().to_owned(),
                    line: p.line_of(at),
                    is_pub: pending_pub,
                    in_test: p.in_test(at),
                    signature: p.code[at..end].trim().to_owned(),
                    field_types: Vec::new(),
                    fields: Vec::new(),
                    derives: std::mem::take(&mut pending_derives),
                    self_type: None,
                    impl_trait: None,
                    annotation: p.annotation_for(p.line_of(at)),
                    body: None,
                });
                pending_pub = false;
                i = end + 1;
                continue;
            }
            "type" => {
                let (name, nend) = p.ident_at(p.scan_ident_start(wend));
                let end = p.scan_to(nend, b";", false);
                let ctx = blocks.last();
                items.push(Item {
                    kind: ItemKind::TypeAlias,
                    name: name.to_owned(),
                    line: p.line_of(at),
                    is_pub: pending_pub,
                    in_test: p.in_test(at),
                    signature: p.code[at..end].trim().to_owned(),
                    field_types: Vec::new(),
                    fields: Vec::new(),
                    derives: std::mem::take(&mut pending_derives),
                    self_type: ctx.and_then(|c| c.self_type.clone()),
                    impl_trait: ctx.and_then(|c| c.impl_trait.clone()),
                    annotation: p.annotation_for(p.line_of(at)),
                    body: None,
                });
                pending_pub = false;
                i = end + 1;
                continue;
            }
            "const" | "static" => {
                // `const` also appears as `const fn` and `const N: usize` in
                // generics; only treat it as an item when a `name:` follows.
                let nstart = p.scan_ident_start(wend);
                let (name, nend) = p.ident_at(nstart);
                if name == "fn" {
                    i = wend;
                    continue;
                }
                let end = p.scan_to(nend, b"=;", true);
                if name.is_empty() {
                    i = wend;
                    continue;
                }
                items.push(Item {
                    kind: ItemKind::Const,
                    name: name.to_owned(),
                    line: p.line_of(at),
                    is_pub: pending_pub,
                    in_test: p.in_test(at),
                    signature: p.code[at..end].trim().to_owned(),
                    field_types: Vec::new(),
                    fields: Vec::new(),
                    derives: std::mem::take(&mut pending_derives),
                    self_type: blocks.last().and_then(|c| c.self_type.clone()),
                    impl_trait: blocks.last().and_then(|c| c.impl_trait.clone()),
                    annotation: p.annotation_for(p.line_of(at)),
                    body: None,
                });
                pending_pub = false;
                // Skip the initializer to the terminating `;` at depth 0.
                // Brace-aware: a braced initializer (`= { let t = …; t }` or
                // a `match` expression) may contain `;` at zero paren depth,
                // and stopping there would resume parsing mid-initializer —
                // any `fn`/`struct` keyword in the tail would surface as a
                // phantom top-level item.
                i = p.scan_past_initializer(end) + 1;
                continue;
            }
            "macro_rules" => {
                let open = p.scan_to(wend, b"{", false);
                i = p.matching_brace(open);
                pending_pub = false;
                continue;
            }
            _ => {
                pending_pub = false;
                i = wend;
                continue;
            }
        }
    }
    items
}

impl<'a> Parser<'a> {
    /// Offset of the next identifier start at or after `i`.
    fn scan_ident_start(&self, mut i: usize) -> usize {
        while i < self.bytes.len() && !is_ident_start(self.bytes[i]) {
            i += 1;
        }
        i
    }

    /// Offset of the `;` terminating a `const`/`static` initializer: the
    /// first `;` at zero paren/bracket/brace depth after `i`. Unlike
    /// [`Parser::scan_to`], braces nest — `= { let t = …; t };` skips to the
    /// final `;`, not the one inside the block.
    fn scan_past_initializer(&self, mut i: usize) -> usize {
        let mut depth = 0usize;
        while i < self.bytes.len() {
            match self.bytes[i] {
                b'(' | b'[' | b'{' => depth += 1,
                b')' | b']' | b'}' => depth = depth.saturating_sub(1),
                b';' if depth == 0 => return i,
                _ => {}
            }
            i += 1;
        }
        i
    }
}

/// Strips a leading visibility like `pub(crate)` from a tuple-field type.
fn strip_vis(t: &str) -> &str {
    let t = t.trim();
    if let Some(rest) = t.strip_prefix("pub") {
        let rest = rest.trim_start();
        if let Some(body) = rest.strip_prefix('(') {
            if let Some(close) = body.find(')') {
                return body[close + 1..].trim_start();
            }
        }
        if rest.len() < t.len() {
            return rest;
        }
    }
    t
}

/// Splits an impl header at the ` for ` that separates trait from self type,
/// respecting angle-bracket depth (`impl Index<Range<usize>> for Doc`).
fn split_impl_for(header: &str) -> Option<(&str, &str)> {
    let bytes = header.as_bytes();
    let mut depth = 0i32;
    let mut i = 0;
    while i + 5 <= bytes.len() {
        match bytes[i] {
            b'<' => depth += 1,
            b'>' if i > 0 && bytes[i - 1] != b'-' => depth -= 1,
            b'f' if depth == 0
                && header[i..].starts_with("for ")
                && i > 0
                && bytes[i - 1].is_ascii_whitespace() =>
            {
                return Some((&header[..i], &header[i + 4..]));
            }
            _ => {}
        }
        i += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn find<'a>(items: &'a [Item], kind: ItemKind, name: &str) -> &'a Item {
        items
            .iter()
            .find(|i| i.kind == kind && i.name == name)
            .unwrap_or_else(|| panic!("no {kind:?} named {name}: {items:?}"))
    }

    #[test]
    fn parses_fn_signature_and_skips_body() {
        let src = "pub fn decrypt_chunk(key: &SecretKey, data: &[u8]) -> Vec<u8> {\n    let inner = |x: Foo| x;\n    inner(Foo)\n}\n";
        let items = parse_items(src);
        let f = find(&items, ItemKind::Fn, "decrypt_chunk");
        assert!(f.is_pub);
        assert_eq!(f.line, 1);
        assert!(f.signature.contains("key: &SecretKey"));
        assert!(f.signature.contains("-> Vec<u8>"));
        // Nothing from the body leaks into items.
        assert_eq!(items.len(), 1, "{items:?}");
    }

    #[test]
    fn parses_struct_fields_with_lines() {
        let src = "pub struct Channel {\n    name: String,\n    key: SecretKey,\n    map: BTreeMap<String, Vec<u8>>,\n}\n";
        let items = parse_items(src);
        let s = find(&items, ItemKind::Struct, "Channel");
        assert_eq!(s.field_types.len(), 3, "{s:?}");
        assert_eq!(s.field_types[1], (3, "SecretKey".to_owned()));
        assert_eq!(s.field_types[2].1, "BTreeMap<String, Vec<u8>>");
    }

    #[test]
    fn parses_tuple_struct_and_enum_variants() {
        let src = "pub struct Id(pub u32);\nenum E {\n    A,\n    B(SecretKey, u8),\n    C { doc: Document },\n    D = 4,\n}\n";
        let items = parse_items(src);
        let id = find(&items, ItemKind::Struct, "Id");
        assert_eq!(id.field_types, vec![(1, "u32".to_owned())]);
        let e = find(&items, ItemKind::Enum, "E");
        let types: Vec<&str> = e.field_types.iter().map(|(_, t)| t.as_str()).collect();
        assert_eq!(types, ["SecretKey", "u8", "Document"], "{e:?}");
        assert_eq!(e.field_types[0].0, 4);
    }

    #[test]
    fn impl_context_reaches_methods() {
        let src = "impl fmt::Debug for SecretKey {\n    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result { Ok(()) }\n}\nimpl<T: Clone> Holder<T> {\n    pub fn get(&self) -> &T { &self.0 }\n}\n";
        let items = parse_items(src);
        let blk = find(&items, ItemKind::Impl, "SecretKey");
        assert_eq!(blk.impl_trait.as_deref(), Some("fmt::Debug"));
        let f = find(&items, ItemKind::Fn, "fmt");
        assert_eq!(f.self_type.as_deref(), Some("SecretKey"));
        assert_eq!(f.impl_trait.as_deref(), Some("fmt::Debug"));
        let g = find(&items, ItemKind::Fn, "get");
        assert_eq!(g.self_type.as_deref(), Some("Holder<T>"));
        assert_eq!(g.impl_trait, None);
    }

    #[test]
    fn derives_and_annotations_attach() {
        let src = "// taint: secret — raw key material\n#[derive(Clone, PartialEq)]\npub struct SecretKey([u8; 16]);\n\nfn untouched() {}\n";
        let items = parse_items(src);
        let s = find(&items, ItemKind::Struct, "SecretKey");
        assert_eq!(s.derives, ["Clone", "PartialEq"]);
        let ann = s.annotation.as_ref().map(|a| a.text.as_str());
        assert_eq!(ann, Some("secret — raw key material"));
        let f = find(&items, ItemKind::Fn, "untouched");
        assert!(f.annotation.is_none());
        assert!(f.derives.is_empty());
    }

    #[test]
    fn trailing_annotation_on_item_line() {
        let src = "fn seal(rules: &RuleSet) -> Vec<u8> { vec![] } // taint: sink — encrypts\n";
        let items = parse_items(src);
        let f = find(&items, ItemKind::Fn, "seal");
        assert_eq!(
            f.annotation.as_ref().map(|a| a.text.as_str()),
            Some("sink — encrypts")
        );
    }

    #[test]
    fn use_items_and_test_masking() {
        let src = "pub use dissemination::{StreamItem, DisseminationChannel};\n#[cfg(test)]\nmod tests {\n    use sdds_crypto::SecretKey;\n    fn helper(k: SecretKey) {}\n}\n";
        let items = parse_items(src);
        let u = find(
            &items,
            ItemKind::Use,
            "dissemination::{StreamItem, DisseminationChannel}",
        );
        assert!(u.is_pub);
        assert!(!u.in_test);
        let masked = items
            .iter()
            .filter(|i| i.in_test)
            .map(|i| i.name.clone())
            .collect::<Vec<_>>();
        assert!(
            masked.contains(&"sdds_crypto::SecretKey".to_owned()),
            "{items:?}"
        );
        assert!(masked.contains(&"helper".to_owned()));
    }

    #[test]
    fn associated_types_and_consts_keep_impl_context() {
        let src = "impl Session for Reader {\n    type Event = ();\n    const DEPTH: usize = 3;\n    fn on_event(&mut self, e: Self::Event) {}\n}\n";
        let items = parse_items(src);
        let t = find(&items, ItemKind::TypeAlias, "Event");
        assert_eq!(t.self_type.as_deref(), Some("Reader"));
        assert!(t.signature.contains("type Event = ()"));
        let c = find(&items, ItemKind::Const, "DEPTH");
        assert_eq!(c.name, "DEPTH");
        let f = find(&items, ItemKind::Fn, "on_event");
        assert_eq!(f.impl_trait.as_deref(), Some("Session"));
    }

    #[test]
    fn where_clauses_do_not_confuse_impl_split() {
        let src = "impl<T> Store<T> where T: Clone {\n    fn put(&mut self, v: T) {}\n}\n";
        let items = parse_items(src);
        let blk = find(&items, ItemKind::Impl, "Store<T>");
        assert_eq!(blk.impl_trait, None);
    }

    #[test]
    fn fn_bodies_are_captured_with_line_mapping() {
        let src = "fn first(x: u8)\n    -> u8 {\n    helper(x);\n    x\n}\nfn second() {}\n";
        let items = parse_items(src);
        let f = find(&items, ItemKind::Fn, "first");
        let body = f.body.as_ref().expect("first has a body");
        assert_eq!(body.line, 2, "opening brace line");
        assert!(body.text.starts_with('{') && body.text.ends_with('}'));
        let call = body.text.find("helper").expect("call in body");
        assert_eq!(body.line_at(call), 3);
        assert_eq!(body.end_line(), 5);
        let g = find(&items, ItemKind::Fn, "second");
        assert_eq!(g.line, 6);
        assert_eq!(g.body.as_ref().map(|b| b.text.as_str()), Some("{}"));
    }

    /// The desync regression the body pass depends on: braces inside string
    /// and char literals or `matches!`-style macro arms must not shift the
    /// body span of the fn that contains them — every later item would then
    /// be mis-attributed or swallowed.
    #[test]
    fn body_scanning_survives_literal_and_macro_braces() {
        let src = "fn tricky(c: char, s: &str) -> bool {\n\
                   \u{20}   let open = '{';\n\
                   \u{20}   let close = '}';\n\
                   \u{20}   let odd = \"}} unbalanced {\";\n\
                   \u{20}   let top = '\\u{10FFFF}';\n\
                   \u{20}   matches!(c, '{' | '}') || s.contains(odd) && top == c\n\
                   }\n\
                   pub fn after(x: u8) -> u8 {\n\
                   \u{20}   x\n\
                   }\n";
        let items = parse_items(src);
        assert_eq!(items.len(), 2, "{items:?}");
        let tricky = find(&items, ItemKind::Fn, "tricky");
        let body = tricky.body.as_ref().expect("body captured");
        assert_eq!(body.end_line(), 7, "closing brace on its own line");
        // Literal contents were blanked out of the captured body...
        assert!(!body.text.contains("unbalanced"), "{}", body.text);
        assert!(!body.text.contains("10FFFF"), "{}", body.text);
        // ...but real body tokens survived.
        assert!(body.text.contains("matches!"));
        let after = find(&items, ItemKind::Fn, "after");
        assert!(after.is_pub);
        assert_eq!(after.line, 8, "{items:?}");
    }

    /// A braced `const` initializer containing `;` must be skipped whole:
    /// resuming mid-initializer surfaces its local items as phantom
    /// top-level items and desyncs everything after.
    #[test]
    fn braced_const_initializer_is_skipped_whole() {
        let src = "const TABLE: [u8; 4] = {\n\
                   \u{20}   let mut t = [0u8; 4];\n\
                   \u{20}   struct Local(u8);\n\
                   \u{20}   t[0] = 1;\n\
                   \u{20}   t\n\
                   };\n\
                   pub fn after_const() {}\n";
        let items = parse_items(src);
        assert!(
            !items.iter().any(|i| i.name == "Local"),
            "initializer-local item leaked: {items:?}"
        );
        let c = find(&items, ItemKind::Const, "TABLE");
        assert_eq!(c.line, 1);
        let f = find(&items, ItemKind::Fn, "after_const");
        assert_eq!(f.line, 7, "{items:?}");
    }
}
