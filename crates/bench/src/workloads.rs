//! Workloads of the E1–E9 experiments.

use sdds_card::CostModel;
use sdds_core::conflict::AccessPolicy;
use sdds_core::engine::{evaluate_secure_document, EngineConfig, SessionStats};
use sdds_core::evaluator::{EvaluatorConfig, StreamingEvaluator};
use sdds_core::query::Query;
use sdds_core::rule::{RuleSet, Sign};
use sdds_core::secdoc::{SecureDocument, SecureDocumentBuilder};
use sdds_core::skipindex::encode::EncoderConfig;
use sdds_crypto::SecretKey;
use sdds_xml::generator::{self, Corpus, GeneratorConfig};
use sdds_xml::{Document, Event};

/// The community key used by every benchmark document.
pub fn bench_key() -> SecretKey {
    SecretKey::derive(b"sdds-bench", "documents")
}

/// A hospital document of roughly `elements` element nodes.
pub fn hospital(elements: usize) -> Document {
    Corpus::Hospital.generate(elements, &GeneratorConfig::default())
}

/// Builds the secure form of a document with the given chunk size and skip
/// index granularity.
pub fn secure(doc: &Document, chunk_size: usize, min_index_bytes: usize) -> SecureDocument {
    SecureDocumentBuilder::new("bench-doc", bench_key())
        .chunk_size(chunk_size)
        .encoder_config(EncoderConfig {
            min_index_bytes,
            ..EncoderConfig::default()
        })
        .build(doc)
}

/// The medical rule set used throughout the experiments; the subject picks the
/// restrictiveness profile (doctor ≈ permissive, secretary ≈ restrictive).
pub fn medical_rules() -> RuleSet {
    RuleSet::parse(
        "+, doctor, //patient\n\
         -, doctor, //patient/ssn\n\
         +, secretary, //patient/name\n\
         +, secretary, //patient/address\n\
         +, researcher, //diagnosis\n\
         +, auditor, //acts/act[@type = \"surgery\"]/report",
    )
    .expect("static rule set parses")
}

/// A synthetic pool of `n` rules of growing variety for one subject, used by
/// the E1 scaling experiment.
pub fn rule_pool(n: usize) -> RuleSet {
    const OBJECTS: &[&str] = &[
        "//patient/name",
        "//patient/ssn",
        "//patient/address",
        "//diagnosis/item",
        "//acts/act/report",
        "//acts/act[@type = \"surgery\"]",
        "//prescriptions/prescription/drug",
        "//patient[diagnosis/item/@sensitive = \"true\"]/name",
        "//act/physician",
        "//act/date",
        "//patient//report",
        "/hospital/patient",
    ];
    let mut rules = RuleSet::new();
    for i in 0..n {
        let sign = if i % 4 == 3 { Sign::Deny } else { Sign::Permit };
        rules
            .push(sign, "subject", OBJECTS[i % OBJECTS.len()])
            .expect("pool rule parses");
    }
    rules
}

/// Evaluates a plaintext event stream for one subject (no crypto): the E1/E9
/// kernel.
pub fn evaluate_plain(events: &[Event], rules: &RuleSet, subject: &str) -> usize {
    let config = EvaluatorConfig::new(rules.clone(), subject);
    let (out, _) = StreamingEvaluator::evaluate_all(&config, events).expect("evaluation succeeds");
    out.len()
}

/// Runs the full secure pipeline for one subject and returns its statistics.
pub fn run_secure(
    document: &SecureDocument,
    rules: &RuleSet,
    subject: &str,
    query: Option<&str>,
    use_skip_index: bool,
) -> SessionStats {
    let mut evaluator = EvaluatorConfig::new(rules.clone(), subject);
    if let Some(q) = query {
        evaluator = evaluator.with_query(Query::parse(q).expect("query parses"));
    }
    let mut config = EngineConfig::new(evaluator);
    config.use_skip_index = use_skip_index;
    let (_, stats) = evaluate_secure_document(document, &bench_key(), config)
        .expect("secure evaluation succeeds");
    stats
}

/// Convenience: simulated e-gate latency (seconds) of a session.
pub fn egate_seconds(stats: &SessionStats) -> f64 {
    stats
        .ledger
        .breakdown(&CostModel::egate())
        .total()
        .as_secs_f64()
}

/// A dissemination stream of `items` items.
pub fn stream(items: usize) -> Document {
    generator::stream(
        &generator::StreamProfile {
            items,
            payload_len: 128,
            ..generator::StreamProfile::default()
        },
        &GeneratorConfig::default(),
    )
}

/// Parental-control rules of the dissemination subscriber.
pub fn parental_rules() -> (RuleSet, AccessPolicy) {
    (
        RuleSet::parse("-, child, //item[rating > 12]").expect("parses"),
        AccessPolicy::open(),
    )
}
