//! E3 — skip-index construction cost and compactness.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sdds_bench::workloads;
use sdds_core::skipindex::encode::{DocumentEncoder, EncoderConfig};

fn bench(c: &mut Criterion) {
    let doc = workloads::hospital(2_000);
    let mut group = c.benchmark_group("e3_index_overhead");
    group.sample_size(10);
    for (label, recursive) in [("recursive", true), ("flat", false)] {
        let config = EncoderConfig {
            min_index_bytes: 32,
            recursive_bitmaps: recursive,
            ..EncoderConfig::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(label), &config, |b, cfg| {
            b.iter(|| DocumentEncoder::new(*cfg).encode(&doc).stats.index_bytes)
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
