//! Integration tests of the secure pipeline itself: tamper resistance across
//! crate boundaries, skip-index cost behaviour, RAM-budget behaviour and the
//! dissemination path.

use std::time::Duration;

use sdds::apps::dissem::DisseminationApp;
use sdds_card::{CardProfile, CostModel};
use sdds_core::conflict::AccessPolicy;
use sdds_core::engine::{
    evaluate_secure_document, EngineConfig, SecureEvaluationSession, SessionRequest,
};
use sdds_core::evaluator::EvaluatorConfig;
use sdds_core::rule::RuleSet;
use sdds_core::secdoc::SecureDocumentBuilder;
use sdds_core::skipindex::encode::EncoderConfig;
use sdds_core::CoreError;
use sdds_crypto::SecretKey;
use sdds_xml::generator::{self, Corpus, GeneratorConfig, StreamProfile};
use sdds_xml::writer;

fn key() -> SecretKey {
    SecretKey::derive(b"integration", "doc")
}

fn restrictive_rules() -> RuleSet {
    RuleSet::parse("+, user, //patient/name").unwrap()
}

#[test]
fn skip_benefit_grows_with_document_size_and_restrictiveness() {
    // The headline claim of E2: for a restrictive subject the skip index cuts
    // the transferred + decrypted volume, and the benefit grows with size.
    let mut previous_ratio = f64::MAX;
    for target in [500usize, 2_000, 8_000] {
        let doc = Corpus::Hospital.generate(target, &GeneratorConfig::default());
        // 128-byte chunks: the chunk is the integrity/decryption granularity,
        // so it bounds how much of the skipped bytes translates into chunks
        // that are never fetched (see the E2 ablation on chunk size).
        let secure = SecureDocumentBuilder::new("doc", key())
            .chunk_size(128)
            .encoder_config(EncoderConfig {
                min_index_bytes: 32,
                ..EncoderConfig::default()
            })
            .build(&doc);
        let run = |use_index: bool| {
            let mut config = EngineConfig::new(EvaluatorConfig::new(restrictive_rules(), "user"));
            config.use_skip_index = use_index;
            evaluate_secure_document(&secure, &key(), config).unwrap()
        };
        let (view_with, with) = run(true);
        let (view_without, without) = run(false);
        assert_eq!(
            writer::to_string(&view_with),
            writer::to_string(&view_without)
        );
        assert!(with.ledger.bytes_decrypted < without.ledger.bytes_decrypted);
        // The skipped *byte ranges* must cover most of the document (the rule
        // only needs the name element of each patient).
        assert!(
            with.ledger.bytes_skipped as f64 > 0.7 * secure.header.plaintext_len as f64,
            "expected most of the document to be skipped"
        );
        let ratio = with.ledger.bytes_decrypted as f64 / without.ledger.bytes_decrypted as f64;
        assert!(
            ratio <= previous_ratio + 0.15,
            "skip benefit should not degrade as the document grows (ratio {ratio} after {previous_ratio})"
        );
        previous_ratio = ratio;
    }
    // For the largest document the realised reduction (whole chunks never
    // fetched nor decrypted) must be substantial.
    assert!(
        previous_ratio < 0.7,
        "expected >30% decryption savings, got ratio {previous_ratio}"
    );
}

#[test]
fn chunk_size_trades_skip_precision_for_proof_overhead() {
    let doc = Corpus::Hospital.generate(4_000, &GeneratorConfig::default());
    let mut decrypted = Vec::new();
    for chunk_size in [128usize, 512, 2048] {
        let secure = SecureDocumentBuilder::new("doc", key())
            .chunk_size(chunk_size)
            .build(&doc);
        let config = EngineConfig::new(EvaluatorConfig::new(restrictive_rules(), "user"));
        let (_, stats) = evaluate_secure_document(&secure, &key(), config).unwrap();
        decrypted.push(stats.ledger.bytes_decrypted);
    }
    // Smaller chunks skip more precisely, hence decrypt no more than larger ones.
    assert!(decrypted[0] <= decrypted[1]);
    assert!(decrypted[1] <= decrypted[2]);
}

#[test]
fn tampering_anywhere_is_detected_before_any_output_is_produced() {
    let doc = Corpus::Hospital.generate(800, &GeneratorConfig::default());
    let secure = SecureDocumentBuilder::new("doc", key()).build(&doc);
    let config = || EngineConfig::new(EvaluatorConfig::new(restrictive_rules(), "user"));

    // Header tampering.
    let mut header = secure.header.clone();
    header.plaintext_len += 1;
    assert!(SecureEvaluationSession::open(header, key(), config()).is_err());

    // Chunk substitution: serve chunk 1 in place of chunk 0 with chunk 0's proof.
    let mut session =
        SecureEvaluationSession::open(secure.header.clone(), key(), config()).unwrap();
    let SessionRequest::NeedChunk(first) = session.next_request() else {
        panic!("expected a chunk request")
    };
    let err = session
        .supply_chunk(
            first,
            secure.chunk((first + 1) as usize).unwrap(),
            &secure.proof(first as usize).unwrap(),
        )
        .unwrap_err();
    assert!(matches!(err, CoreError::Crypto(_)));
    assert!(session.take_output().is_empty());
}

#[test]
fn egate_ram_budget_is_respected_on_realistic_folders() {
    // The evaluator working set (excluding the chunk window handled by the
    // card's I/O buffer) must stay within the e-gate's 1 KiB for rule sets
    // without cross-subtree pendency, independently of document size.
    let doc = Corpus::Hospital.generate(6_000, &GeneratorConfig::default());
    let secure = SecureDocumentBuilder::new("doc", key())
        .chunk_size(256)
        .build(&doc);
    let config = EngineConfig::new(EvaluatorConfig::new(restrictive_rules(), "user"));
    let (_, stats) = evaluate_secure_document(&secure, &key(), config).unwrap();
    let evaluator_peak = stats.evaluator.unwrap().peak_ram_bytes();
    assert!(
        evaluator_peak <= CardProfile::egate().ram_bytes,
        "evaluator peak {evaluator_peak} exceeds the 1 KiB e-gate budget"
    );
}

#[test]
fn dissemination_meets_real_time_on_the_egate_model() {
    let stream = generator::stream(
        &StreamProfile {
            items: 15,
            payload_len: 96,
            ..StreamProfile::default()
        },
        &GeneratorConfig::default(),
    );
    let rules = RuleSet::parse("-, child, //item[rating > 12]").unwrap();
    let app = DisseminationApp::new(
        b"broadcast",
        &stream,
        rules,
        CardProfile::modern_secure_element(),
    );
    let report = app
        .consume_in_process("child", AccessPolicy::open())
        .unwrap();
    assert_eq!(report.items_delivered + report.items_blocked, 15);
    assert!(report.items_blocked > 0);
    assert!(report.items_delivered > 0);
    // Each (small) item fits comfortably in a 2-second broadcast slot even on
    // the 2 KB/s card.
    assert!(report.meets_real_time(Duration::from_secs(2)));
}

#[test]
fn latency_breakdown_is_dominated_by_transfer_then_decryption_on_egate() {
    let doc = Corpus::Hospital.generate(2_000, &GeneratorConfig::default());
    let secure = SecureDocumentBuilder::new("doc", key()).build(&doc);
    let config = EngineConfig::new(EvaluatorConfig::new(
        RuleSet::parse("+, user, /hospital").unwrap(),
        "user",
    ));
    let (_, stats) = evaluate_secure_document(&secure, &key(), config).unwrap();
    let breakdown = stats.ledger.breakdown(&CostModel::egate());
    assert!(breakdown.transfer > breakdown.decryption);
    assert!(breakdown.decryption > breakdown.evaluation);
    assert!(breakdown.total() > Duration::from_millis(10));
    // On a modern secure element the same work is at least 10x faster.
    let modern = stats.ledger.breakdown(&CostModel::modern_secure_element());
    assert!(breakdown.total().as_secs_f64() / modern.total().as_secs_f64() > 10.0);
}
