//! Structural statistics of documents and event streams.
//!
//! The experiments report results against structural profiles (node count,
//! depth, fan-out, text ratio, tag vocabulary); these statistics are computed
//! here both for sanity checks of the generators and for the bench harness
//! output.

use std::collections::HashMap;

use crate::event::Event;

/// Structural statistics of a document.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DocStats {
    /// Number of element nodes.
    pub elements: usize,
    /// Number of text nodes.
    pub text_nodes: usize,
    /// Number of attributes.
    pub attributes: usize,
    /// Total bytes of text content.
    pub text_bytes: usize,
    /// Total serialised size (compact form), in bytes.
    pub serialized_bytes: usize,
    /// Maximum element nesting depth.
    pub max_depth: usize,
    /// Number of distinct element names.
    pub distinct_tags: usize,
    /// Histogram of element names.
    pub tag_histogram: HashMap<String, usize>,
    /// Maximum number of element children of a single element.
    pub max_fanout: usize,
}

impl DocStats {
    /// Computes statistics from an event stream.
    pub fn from_events(events: &[Event]) -> Self {
        let mut stats = DocStats::default();
        let mut depth = 0usize;
        // Per-depth counters of element children, to compute fan-out.
        let mut child_counts: Vec<usize> = Vec::new();
        for ev in events {
            stats.serialized_bytes += ev.serialized_len();
            match ev {
                Event::Open { name, attrs } => {
                    stats.elements += 1;
                    stats.attributes += attrs.len();
                    *stats.tag_histogram.entry(name.clone()).or_insert(0) += 1;
                    if let Some(c) = child_counts.last_mut() {
                        *c += 1;
                    }
                    depth += 1;
                    stats.max_depth = stats.max_depth.max(depth);
                    child_counts.push(0);
                }
                Event::Text(t) => {
                    stats.text_nodes += 1;
                    stats.text_bytes += t.len();
                }
                Event::Close(_) => {
                    if let Some(c) = child_counts.pop() {
                        stats.max_fanout = stats.max_fanout.max(c);
                    }
                    depth = depth.saturating_sub(1);
                }
            }
        }
        stats.distinct_tags = stats.tag_histogram.len();
        stats
    }

    /// Total number of nodes (elements + text).
    pub fn total_nodes(&self) -> usize {
        self.elements + self.text_nodes
    }

    /// Fraction of the serialised size taken by text content, in `[0, 1]`.
    pub fn text_ratio(&self) -> f64 {
        if self.serialized_bytes == 0 {
            0.0
        } else {
            self.text_bytes as f64 / self.serialized_bytes as f64
        }
    }

    /// One-line human readable summary, used by the bench harness.
    pub fn summary(&self) -> String {
        format!(
            "{} elements, {} text nodes, depth {}, {} distinct tags, {} bytes",
            self.elements,
            self.text_nodes,
            self.max_depth,
            self.distinct_tags,
            self.serialized_bytes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::Parser;

    #[test]
    fn stats_of_small_document() {
        let events = Parser::parse_all("<a x=\"1\"><b>hi</b><b>yo</b><c/></a>").unwrap();
        let s = DocStats::from_events(&events);
        assert_eq!(s.elements, 4);
        assert_eq!(s.text_nodes, 2);
        assert_eq!(s.attributes, 1);
        assert_eq!(s.text_bytes, 4);
        assert_eq!(s.max_depth, 2);
        assert_eq!(s.distinct_tags, 3);
        assert_eq!(s.tag_histogram["b"], 2);
        assert_eq!(s.max_fanout, 3);
        assert_eq!(s.total_nodes(), 6);
        assert!(s.text_ratio() > 0.0 && s.text_ratio() < 1.0);
        assert!(s.summary().contains("4 elements"));
    }

    #[test]
    fn stats_of_empty_stream() {
        let s = DocStats::from_events(&[]);
        assert_eq!(s.total_nodes(), 0);
        assert_eq!(s.text_ratio(), 0.0);
        assert_eq!(s.max_depth, 0);
    }

    #[test]
    fn serialized_bytes_match_writer_output() {
        let doc = "<a x=\"1\"><b>hi</b><b>yo</b></a>";
        let events = Parser::parse_all(doc).unwrap();
        let s = DocStats::from_events(&events);
        assert_eq!(s.serialized_bytes, crate::writer::to_string(&events).len());
    }
}
