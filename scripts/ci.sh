#!/usr/bin/env bash
# CI-style check for the SDDS workspace: everything tier-1 requires, plus
# keeping the bench and example targets compiling even when not executed.
#
# Usage: scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo bench --no-run (benches must keep compiling)"
cargo bench --no-run

echo "==> cargo build --release --examples"
cargo build --release --examples

echo "CI checks passed."
