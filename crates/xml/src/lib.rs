//! XML substrate for SDDS (Safe Data sharing and Data dissemination on Smart devices).
//!
//! The access-control engine of the paper consumes XML documents as a stream of
//! `open` / `value` / `close` events produced by an event-based parser (SAX-like),
//! never materialising the document (the Secure Operating Environment only has a
//! tiny working memory). This crate provides:
//!
//! * [`event`] — the event model (`Open`, `Text`, `Close`) and event streams,
//! * [`parser`] — a streaming, pull-based XML parser producing those events,
//! * [`writer`] — serialisation of event streams back to XML text,
//! * [`tree`] — an arena-based in-memory document used by baselines, oracles and
//!   the synthetic generators (the SOE engine itself never builds it),
//! * [`tags`] — the tag dictionary and tag-set bit arrays used by the skip index,
//! * [`generator`] — parameterised synthetic document generators reproducing the
//!   structural profiles of the corpora used in the paper's evaluation,
//! * [`stats`] — structural statistics of documents,
//! * [`path`] — small helpers for element paths used throughout tests,
//! * [`symbols`] — interned tag/attribute name symbols shared with the
//!   evaluator's dispatch automaton (one hash lookup per token instead of one
//!   string comparison per rule).

#![forbid(unsafe_code)]

pub mod error;
pub mod event;
pub mod generator;
pub mod parser;
pub mod path;
pub mod stats;
pub mod symbols;
pub mod tags;
pub mod tree;
pub mod writer;

pub use error::XmlError;
pub use event::{Attribute, Event, EventKind};
pub use parser::Parser;
pub use symbols::{Symbol, SymbolTable};
pub use tags::{TagDict, TagId, TagSet};
pub use tree::{Document, NodeData, NodeId};
pub use writer::Writer;
