//! Recursive-descent parser for the XP{[],*,//} fragment.
//!
//! Accepted grammar (whitespace insignificant):
//!
//! ```text
//! path       := ('/' | '//')? step (('/' | '//') step)*
//! step       := ('*' | NAME) predicate*
//! predicate  := '[' body ']'
//! body       := '@' NAME (CMP LITERAL)?
//!             | '.' (CMP LITERAL)?
//!             | relpath ('/@' NAME)? (CMP LITERAL)?
//! relpath    := ('.'? '//')? step (('/' | '//') step)*
//! ```
//!
//! An absolute path with no leading axis token is interpreted as starting with
//! the child axis from the root (i.e. `a/b` ≡ `/a/b`), which is how the rule
//! sets of the paper are written.

use crate::ast::{Axis, Comparison, NodeTest, Path, Predicate, PredicateTarget, Step};
use crate::error::ParseError;
use crate::lexer::{tokenize, Spanned, Token};

struct Cursor<'a> {
    tokens: &'a [Spanned],
    pos: usize,
    source: &'a str,
}

impl<'a> Cursor<'a> {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|s| &s.token)
    }

    fn peek2(&self) -> Option<&Token> {
        self.tokens.get(self.pos + 1).map(|s| &s.token)
    }

    fn offset(&self) -> usize {
        self.tokens
            .get(self.pos)
            .map(|s| s.offset)
            .unwrap_or_else(|| self.source.len())
    }

    fn bump(&mut self) -> Option<&Token> {
        let t = self.tokens.get(self.pos).map(|s| &s.token);
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError::new(message, self.offset(), self.source)
    }
}

/// Parses an absolute path expression (a rule object or a query).
pub fn parse(expression: &str) -> Result<Path, ParseError> {
    let tokens = tokenize(expression)?;
    if tokens.is_empty() {
        return Err(ParseError::new("empty expression", 0, expression));
    }
    let mut cur = Cursor {
        tokens: &tokens,
        pos: 0,
        source: expression,
    };
    let path = parse_path(&mut cur, true)?;
    if cur.peek().is_some() {
        return Err(cur.error("unexpected trailing tokens"));
    }
    if path.is_empty() {
        return Err(ParseError::new("path has no step", 0, expression));
    }
    Ok(path)
}

fn parse_path(cur: &mut Cursor, absolute: bool) -> Result<Path, ParseError> {
    let mut steps = Vec::new();
    // Leading axis.
    let mut axis = match cur.peek() {
        Some(Token::Slash) => {
            cur.bump();
            Axis::Child
        }
        Some(Token::DoubleSlash) => {
            cur.bump();
            Axis::Descendant
        }
        Some(Token::Dot) if !absolute => {
            // `.` or `.//x` inside a predicate.
            cur.bump();
            match cur.peek() {
                Some(Token::DoubleSlash) => {
                    cur.bump();
                    Axis::Descendant
                }
                Some(Token::Slash) => {
                    cur.bump();
                    Axis::Child
                }
                _ => return Ok(Path::new(steps)), // bare `.` — handled by caller
            }
        }
        _ => Axis::Child,
    };
    loop {
        let step = parse_step(cur, axis)?;
        steps.push(step);
        match cur.peek() {
            Some(Token::Slash) => {
                // `/@attr` terminates a relative predicate path; let the caller
                // consume it.
                if matches!(cur.peek2(), Some(Token::At)) {
                    break;
                }
                cur.bump();
                axis = Axis::Child;
            }
            Some(Token::DoubleSlash) => {
                cur.bump();
                axis = Axis::Descendant;
            }
            _ => break,
        }
    }
    Ok(Path::new(steps))
}

fn parse_step(cur: &mut Cursor, axis: Axis) -> Result<Step, ParseError> {
    let test = match cur.bump() {
        Some(Token::Star) => NodeTest::Wildcard,
        // alloc: startup — path expressions parse once at provisioning, never per event.
        Some(Token::Name(n)) => NodeTest::Name(n.clone()),
        Some(other) => {
            // alloc: cold — parse error path.
            let msg = format!("expected an element name or `*`, found {other:?}");
            return Err(ParseError::new(msg, cur.offset(), cur.source));
        }
        None => return Err(cur.error("expected an element name or `*`, found end of input")),
    };
    let mut predicates = Vec::new();
    while matches!(cur.peek(), Some(Token::LBracket)) {
        cur.bump();
        predicates.push(parse_predicate(cur)?);
        match cur.bump() {
            Some(Token::RBracket) => {}
            _ => return Err(cur.error("expected `]` to close the predicate")),
        }
    }
    Ok(Step {
        axis,
        test,
        predicates,
    })
}

fn parse_predicate(cur: &mut Cursor) -> Result<Predicate, ParseError> {
    let target = match cur.peek() {
        Some(Token::At) => {
            cur.bump();
            match cur.bump() {
                // alloc: startup — path expressions parse once at provisioning, never per event.
                Some(Token::Name(n)) => PredicateTarget::Attribute(n.clone()),
                _ => return Err(cur.error("expected an attribute name after `@`")),
            }
        }
        Some(Token::Dot) if !matches!(cur.peek2(), Some(Token::Slash | Token::DoubleSlash)) => {
            cur.bump();
            PredicateTarget::SelfText
        }
        _ => {
            let rel = parse_path(cur, false)?;
            if rel.is_empty() {
                // `.` followed by nothing: self text.
                PredicateTarget::SelfText
            } else if matches!(cur.peek(), Some(Token::Slash))
                && matches!(cur.peek2(), Some(Token::At))
            {
                cur.bump(); // '/'
                cur.bump(); // '@'
                match cur.bump() {
                    // alloc: startup — path expressions parse once at provisioning, never per event.
                    Some(Token::Name(n)) => PredicateTarget::PathAttribute(rel, n.clone()),
                    _ => return Err(cur.error("expected an attribute name after `@`")),
                }
            } else {
                PredicateTarget::Path(rel)
            }
        }
    };
    let condition = if let Some(Token::Cmp(op)) = cur.peek() {
        let op = *op;
        cur.bump();
        match cur.bump() {
            // alloc: startup — path expressions parse once at provisioning, never per event.
            Some(Token::Literal(lit)) => Some((op, lit.clone())),
            // alloc: startup — path expressions parse once at provisioning, never per event.
            Some(Token::Name(word)) => Some((op, word.clone())),
            _ => return Err(cur.error("expected a literal after the comparison operator")),
        }
    } else {
        None
    };
    Ok(Predicate { target, condition })
}

/// Parses a comparison operator name used in textual rule files (`eq`, `ne`, ...).
pub fn parse_comparison(text: &str) -> Option<Comparison> {
    match text {
        "=" | "eq" => Some(Comparison::Eq),
        "!=" | "ne" => Some(Comparison::Ne),
        "<" | "lt" => Some(Comparison::Lt),
        "<=" | "le" => Some(Comparison::Le),
        ">" | "gt" => Some(Comparison::Gt),
        ">=" | "ge" => Some(Comparison::Ge),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_example() {
        // Figure 2 of the paper: R: ⊕, //b[c]/d
        let p = parse("//b[c]/d").unwrap();
        assert_eq!(p.len(), 2);
        assert_eq!(p.steps[0].axis, Axis::Descendant);
        assert_eq!(p.steps[0].test, NodeTest::Name("b".into()));
        assert_eq!(p.steps[0].predicates.len(), 1);
        assert_eq!(
            p.steps[0].predicates[0].target,
            PredicateTarget::Path(Path::new(vec![Step::child("c")]))
        );
        assert_eq!(p.steps[1].axis, Axis::Child);
        assert_eq!(p.steps[1].test, NodeTest::Name("d".into()));
    }

    #[test]
    fn parses_absolute_and_implicit_root() {
        let a = parse("/hospital/patient").unwrap();
        let b = parse("hospital/patient").unwrap();
        assert_eq!(a, b);
        assert_eq!(a.steps[0].axis, Axis::Child);
    }

    #[test]
    fn parses_wildcards_and_descendants() {
        let p = parse("/a/*//d").unwrap();
        assert_eq!(p.steps[1].test, NodeTest::Wildcard);
        assert_eq!(p.steps[2].axis, Axis::Descendant);
        assert!(p.has_recursion_or_wildcard());
    }

    #[test]
    fn parses_attribute_predicates() {
        let p = parse("//item[@sensitive = \"true\"]").unwrap();
        let pred = &p.steps[0].predicates[0];
        assert_eq!(pred.target, PredicateTarget::Attribute("sensitive".into()));
        assert_eq!(pred.condition, Some((Comparison::Eq, "true".into())));
    }

    #[test]
    fn parses_path_attribute_predicates() {
        let p = parse("//patient[acts/act/@type = \"surgery\"]/name").unwrap();
        let pred = &p.steps[0].predicates[0];
        match &pred.target {
            PredicateTarget::PathAttribute(rel, attr) => {
                assert_eq!(rel.len(), 2);
                assert_eq!(attr, "type");
            }
            other => panic!("unexpected target {other:?}"),
        }
        assert_eq!(p.steps[1].test, NodeTest::Name("name".into()));
    }

    #[test]
    fn parses_self_text_predicate() {
        let p = parse("//rating[. <= 12]").unwrap();
        let pred = &p.steps[0].predicates[0];
        assert_eq!(pred.target, PredicateTarget::SelfText);
        assert_eq!(pred.condition, Some((Comparison::Le, "12".into())));
    }

    #[test]
    fn parses_relative_descendant_predicate() {
        let p = parse("//project[.//note]").unwrap();
        match &p.steps[0].predicates[0].target {
            PredicateTarget::Path(rel) => {
                assert_eq!(rel.steps[0].axis, Axis::Descendant);
                assert_eq!(rel.steps[0].test, NodeTest::Name("note".into()));
            }
            other => panic!("unexpected target {other:?}"),
        }
    }

    #[test]
    fn parses_multi_step_predicate_paths() {
        let p = parse("//patient[diagnosis/item]").unwrap();
        match &p.steps[0].predicates[0].target {
            PredicateTarget::Path(rel) => assert_eq!(rel.len(), 2),
            other => panic!("unexpected target {other:?}"),
        }
    }

    #[test]
    fn parses_value_comparison_on_element_path() {
        let p = parse("//act[date = \"2004-01-01\"]/report").unwrap();
        let pred = &p.steps[0].predicates[0];
        assert!(matches!(pred.target, PredicateTarget::Path(_)));
        assert_eq!(pred.condition.as_ref().unwrap().1, "2004-01-01");
    }

    #[test]
    fn parses_multiple_predicates_on_one_step() {
        let p = parse("//meeting[@private = \"false\"][date]").unwrap();
        assert_eq!(p.steps[0].predicates.len(), 2);
    }

    #[test]
    fn parses_unquoted_word_literal() {
        let p = parse("//item[@channel = news]").unwrap();
        assert_eq!(
            p.steps[0].predicates[0].condition,
            Some((Comparison::Eq, "news".into()))
        );
    }

    #[test]
    fn display_of_parsed_path_reparses_identically() {
        for expr in [
            "//b[c]/d",
            "/hospital/patient/name",
            "//patient[@id = \"P00001\"]//report",
            "//item[rating <= 12]/title",
            "/a/*//d[e][@f = \"g\"]",
        ] {
            let p1 = parse(expr).unwrap();
            let p2 = parse(&p1.to_string()).unwrap();
            assert_eq!(p1, p2, "roundtrip failed for {expr}");
        }
    }

    #[test]
    fn rejects_invalid_expressions() {
        for bad in [
            "", "/", "//", "/a[", "/a]", "/a[]", "/a[@]", "/a[b =]", "/a b", "/a/[b]",
        ] {
            assert!(parse(bad).is_err(), "`{bad}` should not parse");
        }
    }

    #[test]
    fn comparison_names() {
        assert_eq!(parse_comparison("eq"), Some(Comparison::Eq));
        assert_eq!(parse_comparison(">="), Some(Comparison::Ge));
        assert_eq!(parse_comparison("??"), None);
    }
}
