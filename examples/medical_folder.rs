//! Medical-folder scenario (the paper's motivating healthcare example):
//! a hospital publishes encrypted patient folders; doctors, secretaries and
//! researchers get different views; an emergency exception is granted by just
//! shipping a new protected rule set — the encrypted folder never changes.
//!
//! Run with: `cargo run --example medical_folder`

use sdds_card::{CardProfile, CostModel};
use sdds_core::rule::{RuleSet, Sign};
use sdds_core::secdoc::SecureDocumentBuilder;
use sdds_core::session::TrustedServer;
use sdds_dsp::DspServer;
use sdds_proxy::{SimulatedPki, Terminal};
use sdds_xml::generator::{self, GeneratorConfig, HospitalProfile};

fn view_of(
    server: &TrustedServer,
    pki: &SimulatedPki,
    dsp: &mut DspServer,
    subject: &str,
    query: Option<&str>,
) -> Result<(String, usize), Box<dyn std::error::Error>> {
    let mut terminal = Terminal::issue_card(
        subject,
        pki.card_transport_key(&sdds_core::rule::Subject::new(subject)),
        CardProfile::modern_secure_element(),
    );
    terminal.provision_from(server)?;
    if let Some(q) = query {
        terminal.set_query(q)?;
    }
    dsp.reset_stats();
    let view = terminal.evaluate_from_dsp(dsp, "patient-folders")?;
    let latency = terminal.latency(&CostModel::egate());
    println!(
        "  [{subject}] {} bytes served by the DSP, simulated e-gate latency: {}",
        dsp.stats().bytes_served,
        latency.summary_ms()
    );
    Ok((view, dsp.stats().bytes_served))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Synthetic hospital folder (the real corpus of the paper is not public).
    let folder = generator::hospital(
        &HospitalProfile {
            patients: 8,
            ..HospitalProfile::default()
        },
        &GeneratorConfig::default(),
    );

    let rules = RuleSet::parse(
        "+, doctor, //patient\n\
         -, doctor, //patient/ssn\n\
         +, secretary, //patient/name\n\
         +, secretary, //patient/address\n\
         +, researcher, //diagnosis",
    )?;
    let mut server = TrustedServer::new(b"hospital-2005", rules);
    let pki = SimulatedPki::new(b"hospital-2005");

    let secure =
        SecureDocumentBuilder::new("patient-folders", server.document_key()).build(&folder);
    println!(
        "published patient folders: {} chunks, index overhead {} bytes",
        secure.chunk_count(),
        secure.encode_stats.index_bytes
    );
    let mut dsp = DspServer::new();
    dsp.store_mut().put_document(secure);

    println!("\n-- regular accesses --");
    let (doctor_view, doctor_bytes) = view_of(&server, &pki, &mut dsp, "doctor", None)?;
    let (secretary_view, secretary_bytes) = view_of(&server, &pki, &mut dsp, "secretary", None)?;
    let (_, _) = view_of(&server, &pki, &mut dsp, "researcher", Some("//diagnosis"))?;
    println!(
        "  doctor view: {} bytes / secretary view: {} bytes",
        doctor_view.len(),
        secretary_view.len()
    );
    println!(
        "  the secretary's restricted rights let the card skip data: {} vs {} bytes fetched",
        secretary_bytes, doctor_bytes
    );

    // Emergency exception: the on-call nurse gets temporary access to the
    // diagnosis of every patient. Only a new protected rule set is shipped.
    println!("\n-- emergency exception for the on-call nurse --");
    server
        .rules_mut()
        .push(Sign::Permit, "nurse", "//patient/name")?;
    server
        .rules_mut()
        .push(Sign::Permit, "nurse", "//diagnosis")?;
    let (nurse_view, _) = view_of(&server, &pki, &mut dsp, "nurse", None)?;
    println!(
        "  nurse now sees {} bytes; the encrypted folder at the DSP was not touched (revision {})",
        nurse_view.len(),
        dsp.store().get("patient-folders").unwrap().revision
    );
    Ok(())
}
