//! The work-stealing executor over per-actor mailboxes (protocol and
//! guarantees: [`crate::actors`] module docs).

use std::collections::VecDeque;

use sdds_sync::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use sdds_sync::sync::{Condvar, Mutex, MutexExt};
use sdds_sync::thread;

use super::mailbox::{Mailbox, SendOutcome};
use super::{ActorSession, ActorStatus};
use crate::obs::ActorObs;

/// Why a send was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendError {
    /// The target actor already retired (completed or failed).
    Retired,
    /// The actor index is out of range for this run.
    UnknownActor,
}

impl std::fmt::Display for SendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SendError::Retired => write!(f, "actor already retired"),
            SendError::UnknownActor => write!(f, "no such actor"),
        }
    }
}

/// One actor after the run, with its scheduling telemetry.
#[derive(Debug)]
pub struct FinishedActor<A> {
    /// Position of the actor in the submitted batch.
    pub index: usize,
    /// The actor itself (views, meters and ledgers are read off it).
    pub actor: A,
    /// Events delivered to it.
    pub events: usize,
    /// Times a worker claimed it (each dispatch delivers at most `batch`
    /// events — with the default batch of 1, dispatches equal events for a
    /// purely event-driven actor: the no-wasted-polls figure of E11).
    pub dispatches: usize,
    /// Retirement rank (0 = first to retire); `None` if the run closed while
    /// the actor was still parked.
    pub completion_order: Option<usize>,
    /// Error message if the actor failed rather than completed.
    pub error: Option<String>,
}

impl<A> FinishedActor<A> {
    /// True when the actor retired by completing (not failing, not left
    /// parked at close).
    pub fn is_complete(&self) -> bool {
        self.completion_order.is_some() && self.error.is_none()
    }
}

/// Outcome of one engine run, in submission (index) order.
#[derive(Debug)]
pub struct ActorReport<A> {
    /// Every submitted actor, indexed as submitted.
    pub actors: Vec<FinishedActor<A>>,
    /// Events delivered across actors.
    pub events_total: usize,
    /// Dispatches across actors.
    pub dispatches_total: usize,
    /// Dispatches claimed from another worker's local queue.
    pub steals: usize,
}

impl<A> ActorReport<A> {
    /// Actors that failed, as `(index, message)` pairs.
    pub fn failures(&self) -> Vec<(usize, &str)> {
        self.actors
            .iter()
            .filter_map(|a| a.error.as_deref().map(|e| (a.index, e)))
            .collect()
    }

    /// True when every actor completed (none failed, none left parked).
    pub fn all_complete(&self) -> bool {
        self.actors.iter().all(FinishedActor::is_complete)
    }
}

/// Per-actor cell: the mailbox (state machine + event queue) and the actor
/// body. The two mutexes are never held together — claim/release take the
/// mailbox lock, delivery takes the body lock — and the body lock is
/// uncontended by protocol: only the claiming worker touches it.
struct Cell<A: ActorSession> {
    mailbox: Mailbox<A::Event>,
    body: Mutex<Body<A>>,
}

struct Body<A> {
    actor: A,
    events: usize,
    dispatches: usize,
    completion_order: Option<usize>,
    error: Option<String>,
}

/// Run-wide shared state: cells, run queues, and the idle/termination
/// protocol.
struct Shared<A: ActorSession> {
    cells: Vec<Cell<A>>,
    /// One FIFO per worker; requeues go to the stepping worker's tail.
    locals: Vec<Mutex<VecDeque<usize>>>,
    /// Driver sends (unparks) land here; any worker may claim them.
    injector: Mutex<VecDeque<usize>>,
    /// Wake epoch: bumped on every enqueue, retirement and close, so an idle
    /// worker that snapshotted the epoch *before* scanning the queues can
    /// sleep on `wake` without losing a wakeup (the epoch changed ⇒ rescan).
    epoch: Mutex<u64>,
    wake: Condvar,
    /// Ids that are Scheduled or Running. `0` under a quiescent scan means
    /// no queue holds work and no dispatch is in flight.
    inflight: AtomicUsize,
    /// Actors not yet retired.
    live: AtomicUsize,
    /// Set once the driver returned: no further sends can arrive.
    closed: AtomicBool,
    /// Retirement tickets.
    retired: AtomicUsize,
    steals: AtomicUsize,
    /// Max events one dispatch may deliver ([`ActorEngine::with_batch`]).
    batch_limit: usize,
    /// Telemetry handles (detached unless [`ActorEngine::with_obs`] wired
    /// them). Parallel tallies only — the report counters above stay the
    /// deterministic source of truth.
    obs: ActorObs,
}

impl<A: ActorSession> Shared<A> {
    /// Bumps the wake epoch and wakes sleepers. `all` distinguishes "one new
    /// runnable id" (one worker suffices) from "termination may now hold"
    /// (every sleeper must re-check).
    fn bump(&self, all: bool) {
        *self.epoch.lock_np() += 1;
        if self.obs.live {
            self.obs.wakes.inc();
        }
        if all {
            self.wake.notify_all();
        } else {
            self.wake.notify_one();
        }
    }

    /// Puts a newly scheduled id on a run queue. The inflight count is
    /// raised *before* the id becomes claimable so a concurrent quiescence
    /// scan cannot observe the queue entry without the count.
    fn enqueue(&self, queue: &Mutex<VecDeque<usize>>, id: usize) {
        // ordering: raised before the push below; the termination scan reads
        // it after finding every queue empty, so the id is never visible
        // while the count says quiescent.
        self.inflight.fetch_add(1, Ordering::SeqCst);
        queue.lock_np().push_back(id);
        self.bump(false);
    }

    /// Claims the next runnable id for `me`: own FIFO first, then the
    /// injector, then the front of the other workers' FIFOs (a steal).
    fn find_work(&self, me: usize) -> Option<usize> {
        if let Some(id) = self.locals[me].lock_np().pop_front() {
            return Some(id);
        }
        if let Some(id) = self.injector.lock_np().pop_front() {
            return Some(id);
        }
        for offset in 1..self.locals.len() {
            let victim = (me + offset) % self.locals.len();
            if let Some(id) = self.locals[victim].lock_np().pop_front() {
                self.steals.fetch_add(1, Ordering::Relaxed);
                if self.obs.live {
                    self.obs.steals.inc();
                }
                return Some(id);
            }
        }
        None
    }

    /// True when no work can ever arrive again: the driver is done sending
    /// (or every actor retired), and nothing is scheduled or running.
    fn finished(&self) -> bool {
        // ordering: closed/live MUST be read before inflight. Once "closed
        // or no live actors" is observed, no sender can raise inflight again
        // (sends come only from the driver, which finished before `closed`
        // was set; retired mailboxes reject sends), so a subsequent zero
        // read is stable. Reading inflight first admits a termination race
        // the model checker found: the count drops to zero, a send raises it
        // and the driver closes, and the stale zero pairs with the fresh
        // closed flag — the worker exits and strands the event.
        if !(self.closed.load(Ordering::SeqCst) || self.live.load(Ordering::SeqCst) == 0) {
            return false;
        }
        // ordering: second load of the protocol described above.
        self.inflight.load(Ordering::SeqCst) == 0
    }

    /// Delivers one dispatch of actor `id` on worker `me`.
    fn dispatch(&self, me: usize, id: usize) {
        let started = if self.obs.live {
            self.obs.recorder.now_nanos()
        } else {
            0
        };
        let cell = &self.cells[id];
        let events = cell.mailbox.claim(self.batch_limit);
        let mut body = cell.body.lock_np();
        body.dispatches += 1;
        let status = if events.is_empty() {
            body.actor.on_step()
        } else {
            let mut last = Ok(ActorStatus::Parked);
            for event in events {
                body.events += 1;
                last = body.actor.on_event(event);
                if !matches!(last, Ok(ActorStatus::Ready) | Ok(ActorStatus::Parked)) {
                    break;
                }
            }
            last
        };
        if matches!(status, Ok(ActorStatus::Complete)) || status.is_err() {
            let ticket = self.retired.fetch_add(1, Ordering::Relaxed);
            body.completion_order = Some(ticket);
            body.error = status.err();
            drop(body);
            cell.mailbox.retire();
            self.live.fetch_sub(1, Ordering::SeqCst); // ordering: see `finished`
            self.inflight.fetch_sub(1, Ordering::SeqCst); // ordering: see `finished`
            self.bump(true);
            self.finish_dispatch(me, started);
            return;
        }
        drop(body);
        let ready = matches!(status, Ok(ActorStatus::Ready));
        if cell.mailbox.release(ready) {
            // Requeue at the tail of our own FIFO: the fairness guarantee.
            // Still inflight (Scheduled), so no count change.
            self.locals[me].lock_np().push_back(id);
            self.bump(false);
        } else {
            // Parked: the next send re-raises the count.
            if self.obs.live {
                self.obs.parks.inc();
            }
            self.inflight.fetch_sub(1, Ordering::SeqCst); // ordering: see `finished`
            self.bump(true);
        }
        self.finish_dispatch(me, started);
    }

    /// Closes the telemetry of one dispatch: counter, latency histogram and
    /// a flight record on the worker's lane. No-op on a detached bundle.
    fn finish_dispatch(&self, me: usize, started: u64) {
        if !self.obs.live {
            return;
        }
        let duration = self.obs.recorder.now_nanos().saturating_sub(started);
        self.obs.dispatches.inc();
        self.obs.dispatch_latency.record(duration);
        self.obs
            .recorder
            .record(me, "actors.dispatch", started, duration);
    }
}

/// Handle the driver closure uses to feed events into a running engine.
pub struct ActorHandle<'a, A: ActorSession> {
    shared: &'a Shared<A>,
}

impl<A: ActorSession> ActorHandle<'_, A> {
    /// Queues `event` for actor `index`, blocking while its mailbox is full
    /// (backpressure). Unparks the actor if it was parked. Fails once the
    /// actor retired — queued work for a finished session is a driver bug
    /// the caller must see, not silently drop.
    pub fn send(&self, index: usize, event: A::Event) -> Result<(), SendError> {
        let cell = self
            .shared
            .cells
            .get(index)
            .ok_or(SendError::UnknownActor)?;
        match cell.mailbox.send(event) {
            Ok((outcome, stalls)) => {
                if self.shared.obs.live && stalls > 0 {
                    self.shared.obs.mailbox_stalls.add(stalls as u64);
                }
                if outcome == SendOutcome::Unparked {
                    if self.shared.obs.live {
                        self.shared.obs.unparks.inc();
                    }
                    self.shared.enqueue(&self.shared.injector, index);
                }
                Ok(())
            }
            Err(()) => {
                if self.shared.obs.live {
                    self.shared.obs.mailbox_closed.inc();
                }
                Err(SendError::Retired)
            }
        }
    }

    /// Number of actors in this run.
    pub fn actors(&self) -> usize {
        self.shared.cells.len()
    }
}

/// The work-stealing, readiness-driven executor (see [`crate::actors`]).
#[derive(Debug, Clone)]
pub struct ActorEngine {
    workers: usize,
    batch: usize,
    capacity: usize,
    obs: ActorObs,
}

impl ActorEngine {
    /// An engine with `workers` worker threads (clamped to at least 1),
    /// delivering 1 event per dispatch from mailboxes bounded at 32 events.
    /// Telemetry is detached until [`ActorEngine::with_obs`] wires it.
    pub fn new(workers: usize) -> Self {
        ActorEngine {
            workers: workers.max(1),
            batch: 1,
            capacity: 32,
            obs: ActorObs::detached(),
        }
    }

    /// Wires the engine's telemetry (steal/park/unpark/wake counters,
    /// dispatch latency, mailbox backpressure) into `obs`'s cells — usually a
    /// clone of [`crate::DspObs::actors`].
    pub fn with_obs(mut self, obs: ActorObs) -> Self {
        self.obs = obs;
        self
    }

    /// Sets how many events one dispatch may deliver (clamped to at least
    /// 1). Larger batches amortize queue hops; 1 maximizes fairness.
    pub fn with_batch(mut self, batch: usize) -> Self {
        self.batch = batch.max(1);
        self
    }

    /// Sets the per-actor mailbox bound (clamped to at least 1).
    pub fn with_capacity(mut self, capacity: usize) -> Self {
        self.capacity = capacity.max(1);
        self
    }

    /// Worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs `actors` (all starting parked) while `driver` — executed on the
    /// calling thread — feeds events through the [`ActorHandle`]. When the
    /// driver returns, the engine drains every queued event and joins; actors
    /// still parked at that point are reported unretired.
    pub fn run<A, D>(&self, actors: Vec<A>, driver: D) -> ActorReport<A>
    where
        A: ActorSession,
        D: FnOnce(&ActorHandle<'_, A>),
    {
        self.run_inner(actors, false, driver)
    }

    /// Runs self-driving actors: every actor starts scheduled (its first
    /// dispatch is an event-less [`ActorSession::on_step`]) and keeps being
    /// redispatched while it reports [`ActorStatus::Ready`]. This is the
    /// [`crate::service::SessionScheduler`] compatibility mode.
    pub fn run_ready<A: ActorSession>(&self, actors: Vec<A>) -> ActorReport<A> {
        self.run_inner(actors, true, |_| {})
    }

    fn run_inner<A, D>(&self, actors: Vec<A>, start_ready: bool, driver: D) -> ActorReport<A>
    where
        A: ActorSession,
        D: FnOnce(&ActorHandle<'_, A>),
    {
        let count = actors.len();
        let shared = Shared {
            cells: actors
                .into_iter()
                .map(|actor| Cell {
                    mailbox: Mailbox::new(self.capacity),
                    body: Mutex::new(Body {
                        actor,
                        events: 0,
                        dispatches: 0,
                        completion_order: None,
                        error: None,
                    }),
                })
                // alloc: startup — the actor fleet is built once per engine run.
                .collect(),
            locals: (0..self.workers)
                .map(|_| Mutex::new(VecDeque::new()))
                // alloc: startup — the actor fleet is built once per engine run.
                .collect(),
            injector: Mutex::new(VecDeque::new()),
            epoch: Mutex::new(0),
            wake: Condvar::new(),
            inflight: AtomicUsize::new(0),
            live: AtomicUsize::new(count),
            closed: AtomicBool::new(false),
            retired: AtomicUsize::new(0),
            steals: AtomicUsize::new(0),
            batch_limit: self.batch,
            // alloc: startup — the actor fleet is built once per engine run.
            obs: self.obs.clone(),
        };
        if start_ready {
            // Seed round-robin over the local FIFOs so the initial load is
            // spread before any stealing happens.
            for id in 0..count {
                if shared.cells[id].mailbox.seed() {
                    shared.enqueue(&shared.locals[id % self.workers], id);
                }
            }
        }

        thread::scope(|scope| {
            for me in 0..self.workers {
                let shared = &shared;
                scope.spawn(move || loop {
                    // Snapshot the epoch BEFORE scanning: any enqueue we race
                    // bumps it, so the sleep below cannot miss it.
                    let seen = *shared.epoch.lock_np();
                    if let Some(id) = shared.find_work(me) {
                        shared.dispatch(me, id);
                        continue;
                    }
                    if shared.finished() {
                        break;
                    }
                    let mut epoch = shared.epoch.lock_np();
                    while *epoch == seen {
                        epoch = shared
                            .wake
                            .wait(epoch)
                            .unwrap_or_else(|poisoned| poisoned.into_inner());
                    }
                });
            }
            // The driver runs on the calling thread, inside the scope: its
            // sends overlap the workers' dispatching.
            driver(&ActorHandle { shared: &shared });
            // ordering: the close must not be reorderable before the
            // driver's last enqueue — the termination scan pairs with it.
            shared.closed.store(true, Ordering::SeqCst);
            shared.bump(true);
        });

        let mut events_total = 0;
        let mut dispatches_total = 0;
        let actors: Vec<FinishedActor<A>> = shared
            .cells
            .into_iter()
            .enumerate()
            .map(|(index, cell)| {
                let body = cell
                    .body
                    .into_inner()
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
                events_total += body.events;
                dispatches_total += body.dispatches;
                FinishedActor {
                    index,
                    actor: body.actor,
                    events: body.events,
                    dispatches: body.dispatches,
                    completion_order: body.completion_order,
                    error: body.error,
                }
            })
            // alloc: startup — the report is assembled once at engine shutdown.
            .collect();
        ActorReport {
            actors,
            events_total,
            dispatches_total,
            steals: shared.steals.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Counts down `budget` events, completing at zero.
    struct Countdown {
        budget: usize,
    }

    impl ActorSession for Countdown {
        type Event = ();

        fn on_event(&mut self, (): ()) -> Result<ActorStatus, String> {
            self.budget = self.budget.saturating_sub(1);
            if self.budget == 0 {
                Ok(ActorStatus::Complete)
            } else {
                Ok(ActorStatus::Parked)
            }
        }

        fn on_step(&mut self) -> Result<ActorStatus, String> {
            Err("stepped without an event".into())
        }
    }

    /// Self-driving: `Ready` for `laps` steps, then `Complete`.
    struct Laps {
        laps: usize,
    }

    impl ActorSession for Laps {
        type Event = ();

        fn on_event(&mut self, (): ()) -> Result<ActorStatus, String> {
            self.on_step()
        }

        fn on_step(&mut self) -> Result<ActorStatus, String> {
            self.laps = self.laps.saturating_sub(1);
            if self.laps == 0 {
                Ok(ActorStatus::Complete)
            } else {
                Ok(ActorStatus::Ready)
            }
        }
    }

    #[test]
    fn event_driven_actors_complete_with_one_dispatch_per_event() {
        let engine = ActorEngine::new(3);
        let actors: Vec<Countdown> = (0..16).map(|i| Countdown { budget: i + 1 }).collect();
        let report = engine.run(actors, |handle| {
            for round in 0..16 {
                for id in 0..handle.actors() {
                    if id >= round {
                        assert_eq!(handle.send(id, ()), Ok(()));
                    }
                }
            }
        });
        assert!(report.all_complete(), "failures: {:?}", report.failures());
        // Actor i gets exactly i+1 events; batch=1 so dispatches == events.
        let expected: usize = (1..=16).sum();
        assert_eq!(report.events_total, expected);
        assert_eq!(report.dispatches_total, expected);
        for finished in &report.actors {
            assert_eq!(finished.events, finished.index + 1);
            assert_eq!(finished.dispatches, finished.events);
        }
    }

    #[test]
    fn ready_seeded_actors_self_drive_to_completion() {
        let engine = ActorEngine::new(4);
        let actors: Vec<Laps> = (0..64).map(|i| Laps { laps: 1 + i % 7 }).collect();
        let report = engine.run_ready(actors);
        assert!(report.all_complete(), "failures: {:?}", report.failures());
        assert_eq!(report.events_total, 0, "pure on_step driving");
        let expected: usize = (0..64).map(|i| 1 + i % 7).sum();
        assert_eq!(report.dispatches_total, expected);
        let mut orders: Vec<usize> = report
            .actors
            .iter()
            .filter_map(|a| a.completion_order)
            .collect();
        orders.sort_unstable();
        assert_eq!(
            orders,
            (0..64).collect::<Vec<_>>(),
            "dense retirement ranks"
        );
    }

    #[test]
    fn send_to_retired_actor_fails_and_unsent_actor_stays_unretired() {
        let engine = ActorEngine::new(2);
        let actors = vec![Countdown { budget: 1 }, Countdown { budget: 1 }];
        let report = engine.run(actors, |handle| {
            assert_eq!(handle.send(0, ()), Ok(()));
            // Wait for actor 0 to retire, then hit the closed mailbox.
            loop {
                match handle.send(0, ()) {
                    Err(SendError::Retired) => break,
                    Ok(()) => sdds_sync::thread::yield_now(),
                    Err(e) => panic!("unexpected send error: {e}"),
                }
            }
            assert_eq!(handle.send(9, ()), Err(SendError::UnknownActor));
        });
        assert!(report.actors[0].is_complete());
        assert!(
            report.actors[1].completion_order.is_none(),
            "never woken, never retired"
        );
        assert_eq!(report.actors[1].dispatches, 0, "parked actors cost nothing");
    }

    #[test]
    fn failing_actor_reports_its_error() {
        struct Explodes;
        impl ActorSession for Explodes {
            type Event = ();
            fn on_event(&mut self, (): ()) -> Result<ActorStatus, String> {
                Err("boom".into())
            }
            fn on_step(&mut self) -> Result<ActorStatus, String> {
                Err("boom".into())
            }
        }
        let report = ActorEngine::new(1).run(vec![Explodes], |handle| {
            assert_eq!(handle.send(0, ()), Ok(()));
        });
        assert!(!report.all_complete());
        assert_eq!(report.failures(), vec![(0, "boom")]);
    }

    #[test]
    fn batching_amortizes_dispatches() {
        let engine = ActorEngine::new(1).with_batch(8).with_capacity(64);
        let report = engine.run(vec![Countdown { budget: 24 }], |handle| {
            for _ in 0..24 {
                assert_eq!(handle.send(0, ()), Ok(()));
            }
        });
        assert!(report.all_complete(), "failures: {:?}", report.failures());
        assert_eq!(report.events_total, 24);
        assert!(
            report.dispatches_total < 24,
            "batch of 8 must claim several events per dispatch, got {} dispatches",
            report.dispatches_total
        );
    }

    #[test]
    fn workers_steal_from_a_loaded_peer() {
        // All actors seed onto worker 0's local FIFO modulo workers, but with
        // 4 workers and heavy per-actor work the idle ones must steal.
        let engine = ActorEngine::new(4);
        let actors: Vec<Laps> = (0..128).map(|_| Laps { laps: 16 }).collect();
        let report = engine.run_ready(actors);
        assert!(report.all_complete(), "failures: {:?}", report.failures());
        assert_eq!(report.dispatches_total, 128 * 16);
    }
}
