//! Model-checked invariants of the sharded serving core.
//!
//! Each test wraps a small two-thread scenario over the real `sdds-dsp`
//! types in [`sdds_check::Model::check`]. In a normal build the service
//! internals use `std` primitives, so only the spawn/join points branch and
//! the tests act as plain concurrency smoke tests. Compiled with
//! `RUSTFLAGS="--cfg sdds_check"` (the `scripts/ci.sh` model-check step),
//! `sdds-sync` swaps the service internals onto the shim primitives and the
//! same tests explore *every* interleaving up to the preemption bound —
//! that build is where the `exhausted` assertions bite.
//!
//! The secure documents are built once outside the model closures: chunk
//! encryption is deterministic, and rebuilding them per execution would
//! dominate the search.

use sdds_check::shim::thread;
use sdds_check::Model;
use sdds_core::error::CoreError;
use sdds_core::secdoc::{SecureDocument, SecureDocumentBuilder};
use sdds_crypto::SecretKey;
use sdds_dsp::server::AtomicServerStats;
use sdds_dsp::service::scheduler::{Schedulable, SessionScheduler, StepOutcome};
use sdds_dsp::service::shard::ShardedStore;
use sdds_xml::generator::{self, GeneratorConfig, HospitalProfile};

/// A small secure document; `salt` varies the content so that republished
/// revisions carry different Merkle roots.
fn document(id: &str, salt: usize) -> SecureDocument {
    let doc = generator::hospital(
        &HospitalProfile {
            patients: 1 + salt,
            ..HospitalProfile::default()
        },
        &GeneratorConfig::default(),
    );
    SecureDocumentBuilder::new(id, SecretKey::derive(b"model", "k")).build(&doc)
}

fn model() -> Model {
    // `Model::new()` honours SDDS_CHECK_BRANCHES / SDDS_CHECK_PREEMPTIONS,
    // so the CI soak can widen the search without touching the tests.
    Model::new()
}

/// Asserts full exploration — only meaningful in the instrumented build,
/// where the service internals actually branch.
fn assert_explored(report: &sdds_check::Report, name: &str) {
    #[cfg(sdds_check)]
    {
        assert!(
            report.exhausted,
            "{name}: search must exhaust within the branch budget"
        );
        assert!(
            report.executions > 1,
            "{name}: instrumented model must branch"
        );
    }
    #[cfg(not(sdds_check))]
    {
        assert!(report.executions >= 1, "{name}: model must run");
    }
}

// ---------------------------------------------------------------------------
// Invariant 1: replication invalidates before publishing.
// ---------------------------------------------------------------------------

/// A republish of a replicated document first invalidates the pinned clones
/// and only then publishes the new revision. A reader that sees the new
/// revision in the directory must therefore never be served a stale clone:
/// whatever replica answers, the chunk verifies against the header the same
/// fetch returned.
#[test]
fn replication_invalidates_before_publish() {
    let v0 = document("doc", 0);
    let v1 = document("doc", 1);
    let report = model()
        .check("replication_invalidate_before_publish", || {
            let store = ShardedStore::new(2);
            store.put_document(v0.clone());
            store.pin_replicas("doc", 2).expect("doc is present");

            thread::scope(|scope| {
                scope.spawn(|| {
                    store.put_document_with(v1.clone(), false);
                });
                // Reader: header and chunk must agree, whichever replica —
                // old, invalidated, or new — ends up serving the request.
                let (header, revision) = store.fetch_header_pinned("doc").expect("doc is stored");
                match store.fetch_chunk_pinned("doc", 0, revision) {
                    Ok((chunk, proof)) => {
                        proof
                            .verify(&chunk, &header.merkle_root)
                            .expect("served chunk must match the header it was pinned with");
                    }
                    Err(CoreError::StaleRevision {
                        pinned, current, ..
                    }) => {
                        assert!(
                            pinned < current,
                            "staleness must point forward: pinned {pinned}, current {current}"
                        );
                    }
                    Err(other) => panic!("unexpected serve error: {other}"),
                }
            });
            // After the republish settles, the store serves revision 1 only.
            assert_eq!(store.revision("doc"), Some(1));
        })
        .expect("no interleaving may serve a stale replica");
    assert_explored(&report, "replication_invalidate_before_publish");
}

// ---------------------------------------------------------------------------
// Invariant 2: stats counters lose nothing and never run ahead.
// ---------------------------------------------------------------------------

/// Concurrent `record_*` calls never lose a count: once both threads join,
/// the totals are exact. A *concurrent* snapshot may be torn mid-record
/// (the checker demonstrates schedules where it reads `requests` before the
/// bump and `chunks_served` after — which is exactly why `reset_stats`
/// takes the shard write lock in production), so mid-record it may only
/// assert per-counter bounds, never cross-counter order.
#[test]
fn stats_never_lose_or_invent_counts() {
    let report = model()
        .check("stats_no_lost_counts", || {
            let stats = AtomicServerStats::default();
            thread::scope(|scope| {
                scope.spawn(|| {
                    stats.record_chunk(10);
                });
                // Concurrent observer: possibly torn, never over-counted.
                let snap = stats.snapshot();
                assert!(snap.requests <= 2, "requests over-counted: {snap:?}");
                assert!(snap.chunks_served <= 1, "chunks over-counted: {snap:?}");
                assert!(snap.bytes_served <= 15, "bytes over-counted: {snap:?}");
                stats.record_header(5);
            });
            let done = stats.snapshot();
            assert_eq!(done.requests, 2, "a record was lost: {done:?}");
            assert_eq!(done.bytes_served, 15, "served bytes were lost: {done:?}");
            assert_eq!(done.chunks_served, 1, "the chunk count was lost: {done:?}");
        })
        .expect("no interleaving may lose or invent a count");
    assert_explored(&report, "stats_no_lost_counts");
}

/// A concurrent `reset` may erase any prefix of an in-flight record, but it
/// never duplicates one: every counter ends at or below its recorded total,
/// and the order invariant keeps holding.
#[test]
fn stats_reset_race_never_duplicates() {
    let report = model()
        .check("stats_reset_race", || {
            let stats = AtomicServerStats::default();
            thread::scope(|scope| {
                scope.spawn(|| {
                    stats.record_chunk(10);
                });
                stats.reset();
            });
            let done = stats.snapshot();
            assert!(done.requests <= 1, "requests duplicated: {done:?}");
            assert!(done.bytes_served <= 10, "bytes duplicated: {done:?}");
            assert!(done.chunks_served <= 1, "chunks duplicated: {done:?}");
        })
        .expect("a reset race may erase but never duplicate");
    assert_explored(&report, "stats_reset_race");
}

// ---------------------------------------------------------------------------
// Invariant 3: the scheduler neither loses nor double-steps a session.
// ---------------------------------------------------------------------------

/// A session that counts its own steps: the model cross-checks the
/// scheduler's ledger against the session's.
struct CountedSession {
    left: usize,
    stepped: usize,
}

impl CountedSession {
    fn new(steps: usize) -> Self {
        CountedSession {
            left: steps,
            stepped: 0,
        }
    }
}

impl Schedulable for CountedSession {
    fn step(&mut self, _quantum: usize) -> Result<StepOutcome, String> {
        if self.left == 0 {
            // A step after completion is exactly the double-step bug the
            // FIFO requeue must rule out.
            return Err("stepped after completion".into());
        }
        self.left -= 1;
        self.stepped += 1;
        Ok(if self.left == 0 {
            StepOutcome::Complete
        } else {
            StepOutcome::Pending
        })
    }
}

fn check_schedule(workers: usize, sessions: Vec<CountedSession>) {
    let expected = sessions.len();
    let steps: usize = sessions.iter().map(|s| s.left).sum();
    let report = SessionScheduler::new(workers, 1).run(sessions);
    assert_eq!(report.finished.len(), expected, "a session was lost");
    assert!(
        report.failures().is_empty(),
        "a session was double-stepped: {:?}",
        report.failures()
    );
    assert_eq!(report.steps_total, steps, "step ledger drifted");
    for finished in &report.finished {
        assert_eq!(
            finished.steps, finished.session.stepped,
            "scheduler ledger disagrees with session {}",
            finished.index
        );
    }
}

/// One worker against the submitting thread: every interleaving of the
/// dequeue / requeue / retire / exit protocol is explored exhaustively, and
/// no schedule may lose or double-step a session.
#[test]
fn scheduler_never_loses_or_double_steps() {
    let report = model()
        .check("scheduler_fifo_requeue", || {
            check_schedule(1, vec![CountedSession::new(2), CountedSession::new(1)]);
        })
        .expect("no interleaving may lose or double-step a session");
    assert_explored(&report, "scheduler_fifo_requeue");
}

/// Two workers contending for the queue. The worker loop crosses a
/// scheduling point per queue-lock, condvar and `in_flight` operation, and
/// every wake/recheck/re-wait cycle branches again, so this space does not
/// exhaust within any practical budget (the price of a loom-lite without
/// DPOR). It runs as a bounded soak instead: the whole branch budget is
/// spent, every explored schedule must uphold the invariant, and the CI
/// soak widens it via SDDS_CHECK_BRANCHES.
#[test]
fn scheduler_worker_race_soak() {
    let report = model()
        .check("scheduler_worker_race_soak", || {
            check_schedule(2, vec![CountedSession::new(2)]);
        })
        .expect("no explored interleaving may lose or double-step a session");
    // Bounded, not exhaustive — assert the search really dug in.
    #[cfg(sdds_check)]
    assert!(
        report.executions > 100,
        "soak explored too little: {report:?}"
    );
    #[cfg(not(sdds_check))]
    assert!(report.executions >= 1, "model must run: {report:?}");
}

// ---------------------------------------------------------------------------
// Invariant 4: revision pinning turns republish races into typed staleness.
// ---------------------------------------------------------------------------

/// A session pins the revision at its header fetch. If a republish lands
/// between that fetch and a chunk fetch, the store answers with
/// `StaleRevision` — never with a new-revision chunk that fails to verify
/// against the pinned header (a torn read).
#[test]
fn pinned_fetches_are_never_torn() {
    let v0 = document("doc", 0);
    let v1 = document("doc", 1);
    let report = model()
        .check("revision_pinning", || {
            let store = ShardedStore::new(1);
            store.put_document(v0.clone());
            thread::scope(|scope| {
                // Pin first: the interesting schedules are the ones where
                // the republish lands inside the pinned session.
                let (header, revision) = store.fetch_header_pinned("doc").expect("doc is stored");
                scope.spawn(|| {
                    store.put_document_with(v1.clone(), false);
                });
                match store.fetch_chunk_pinned("doc", 0, revision) {
                    Ok((chunk, proof)) => {
                        // Served under the pinned revision: must verify
                        // against the pinned header, not the new one.
                        proof
                            .verify(&chunk, &header.merkle_root)
                            .expect("pinned chunk must verify against the pinned header");
                    }
                    Err(CoreError::StaleRevision {
                        pinned, current, ..
                    }) => {
                        assert_eq!(pinned, revision);
                        assert!(current > pinned);
                    }
                    Err(other) => panic!("a pinned fetch must stay typed: {other}"),
                }
            });
        })
        .expect("no interleaving may tear a pinned fetch");
    assert_explored(&report, "revision_pinning");
}
