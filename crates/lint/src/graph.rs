//! The workspace type-flow graph: which named types a struct/enum embeds,
//! and how the `Secret`/`Plaintext` sensitivity tiers propagate through it.
//!
//! Propagation is deliberately conservative, in the certain-answer spirit:
//! a type that *contains* a `Secret`-tier field is itself `Secret` unless
//! `trust.toml` (or a `// taint:` annotation) explicitly assigns it another
//! tier — `Ciphertext` is the tier that stops propagation, and assigning it
//! is a reviewed claim that the embedded sensitivity is encrypted away.

use std::collections::{BTreeMap, BTreeSet};

/// Sensitivity tier of a type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Tier {
    /// Stored/served encrypted form; embedding sensitive data is fine
    /// because it is encrypted away. Stops propagation.
    Ciphertext,
    /// Cleartext document data: decrypted chunks, assembled events, XML.
    Plaintext,
    /// Key material and other card-side secrets.
    Secret,
}

impl Tier {
    /// Stable lowercase name, as used in `trust.toml` and annotations.
    pub fn name(self) -> &'static str {
        match self {
            Tier::Secret => "secret",
            Tier::Plaintext => "plaintext",
            Tier::Ciphertext => "ciphertext",
        }
    }

    /// Parses a tier name (`secret` / `plaintext` / `ciphertext`).
    pub fn by_name(name: &str) -> Option<Tier> {
        match name {
            "secret" => Some(Tier::Secret),
            "plaintext" => Some(Tier::Plaintext),
            "ciphertext" => Some(Tier::Ciphertext),
            _ => None,
        }
    }
}

/// Why a type carries its tier.
#[derive(Debug, Clone)]
pub enum Provenance {
    /// Listed in `trust.toml` or annotated `// taint: <tier>` at its decl.
    Explicit,
    /// Inherited: the type embeds `field_type` (at `file:line`), which
    /// carries the tier.
    Field {
        /// The embedded type the tier was inherited from.
        field_type: String,
        /// File of the embedding field.
        file: String,
        /// 1-based line of the embedding field.
        line: usize,
    },
}

/// A type's effective tier plus how it got it.
#[derive(Debug, Clone)]
pub struct TierInfo {
    /// The effective tier.
    pub tier: Tier,
    /// Explicit assignment or the field edge that propagated it.
    pub provenance: Provenance,
}

/// One field edge: the declaring type embeds `to` at `file:line`.
#[derive(Debug, Clone)]
pub struct FieldEdge {
    /// The embedded type name.
    pub to: String,
    /// File of the field declaration.
    pub file: String,
    /// 1-based line of the field declaration.
    pub line: usize,
}

/// The containment graph: type name → the type names its fields embed.
#[derive(Debug, Default)]
pub struct TypeGraph {
    edges: BTreeMap<String, Vec<FieldEdge>>,
}

impl TypeGraph {
    /// Records that `owner` embeds every type named in `field_text`.
    pub fn add_field(&mut self, owner: &str, field_text: &str, file: &str, line: usize) {
        let entry = self.edges.entry(owner.to_owned()).or_default();
        for name in type_idents(field_text) {
            entry.push(FieldEdge {
                to: name,
                file: file.to_owned(),
                line,
            });
        }
    }

    /// Fixpoint propagation: starting from the explicit assignments, every
    /// type embedding a `Secret` type becomes `Secret`, every type embedding
    /// a `Plaintext` type becomes at least `Plaintext`; `Ciphertext` does
    /// not propagate, and explicit assignments are never overridden.
    pub fn propagate(&self, explicit: &BTreeMap<String, Tier>) -> BTreeMap<String, TierInfo> {
        let mut eff: BTreeMap<String, TierInfo> = explicit
            .iter()
            .map(|(name, &tier)| {
                (
                    name.clone(),
                    TierInfo {
                        tier,
                        provenance: Provenance::Explicit,
                    },
                )
            })
            .collect();
        let rank = |t: Tier| match t {
            Tier::Secret => 2u8,
            Tier::Plaintext => 1,
            Tier::Ciphertext => 0,
        };
        loop {
            let mut changed = false;
            for (owner, edges) in &self.edges {
                if explicit.contains_key(owner) {
                    continue;
                }
                let current = eff.get(owner).map_or(0, |i| rank(i.tier));
                for edge in edges {
                    let inherited = match eff.get(&edge.to).map(|i| i.tier) {
                        Some(Tier::Secret) => Some(Tier::Secret),
                        Some(Tier::Plaintext) => Some(Tier::Plaintext),
                        _ => None,
                    };
                    if let Some(tier) = inherited {
                        if rank(tier) > current {
                            eff.insert(
                                owner.clone(),
                                TierInfo {
                                    tier,
                                    provenance: Provenance::Field {
                                        field_type: edge.to.clone(),
                                        file: edge.file.clone(),
                                        line: edge.line,
                                    },
                                },
                            );
                            changed = true;
                        }
                    }
                }
            }
            if !changed {
                return eff;
            }
        }
    }
}

/// Extracts the type-name identifiers referenced by a piece of item-head
/// text (a signature, a field type, a use path).
///
/// Associated-type positions are skipped: in `A::Event` or `Self::Event`
/// (an uppercase or `Self`/`>` path qualifier), `Event` names an associated
/// type of `A`, not the workspace type `Event` — counting it would make
/// every generic actor signature look like it handles plaintext. Module
/// paths like `sdds_xml::Event` keep the final segment, because a lowercase
/// qualifier is a module, and the segment really is the workspace type.
pub fn type_idents(text: &str) -> Vec<String> {
    let bytes = text.as_bytes();
    let mut out = Vec::new();
    let mut seen = BTreeSet::new();
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        if !(b.is_ascii_alphabetic() || b == b'_') {
            i += 1;
            continue;
        }
        if i > 0 && (bytes[i - 1].is_ascii_alphanumeric() || bytes[i - 1] == b'_') {
            i += 1;
            continue;
        }
        // Lifetimes ('a) are not type names.
        if i > 0 && bytes[i - 1] == b'\'' {
            i += 1;
            continue;
        }
        let start = i;
        while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
            i += 1;
        }
        let ident = &text[start..i];
        // Macro invocations (vec![…]) are not type references.
        if bytes.get(i) == Some(&b'!') {
            continue;
        }
        if in_associated_position(bytes, start) {
            continue;
        }
        if seen.insert(ident.to_owned()) {
            out.push(ident.to_owned());
        }
    }
    out
}

/// True when the identifier starting at `start` is the segment after a
/// `Type::` / `Self::` / `>::` qualifier — i.e. an associated item, not a
/// direct reference to a workspace type of that name.
fn in_associated_position(bytes: &[u8], start: usize) -> bool {
    if start < 2 || bytes[start - 1] != b':' || bytes[start - 2] != b':' {
        return false;
    }
    let mut j = start - 2;
    // `<T as Trait>::Out` — a qualified path is always associated.
    if j > 0 && bytes[j - 1] == b'>' {
        return true;
    }
    // Read the qualifier segment directly before `::`.
    let qual_end = j;
    while j > 0 && (bytes[j - 1].is_ascii_alphanumeric() || bytes[j - 1] == b'_') {
        j -= 1;
    }
    let qualifier = &bytes[j..qual_end];
    qualifier.first().is_some_and(|c| c.is_ascii_uppercase())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extracts_plain_and_module_qualified_names() {
        let names = type_idents("fn f(key: &SecretKey, e: sdds_xml::Event) -> Vec<u8>");
        assert!(names.contains(&"SecretKey".to_owned()));
        assert!(names.contains(&"Event".to_owned()));
        assert!(names.contains(&"sdds_xml".to_owned()));
        assert!(names.contains(&"Vec".to_owned()));
    }

    #[test]
    fn skips_associated_type_positions() {
        let names = type_idents("fn on_event(&mut self, e: A::Event, s: Self::Event)");
        assert!(!names.contains(&"Event".to_owned()), "{names:?}");
        let names = type_idents("fn out() -> <T as Iterator>::Item");
        assert!(!names.contains(&"Item".to_owned()), "{names:?}");
    }

    #[test]
    fn skips_lifetimes_and_macros() {
        let names = type_idents("fn f<'doc>(x: &'doc str) { vec![1] }");
        assert!(!names.contains(&"doc".to_owned()), "{names:?}");
        assert!(!names.contains(&"vec".to_owned()), "{names:?}");
    }

    fn tiers(pairs: &[(&str, Tier)]) -> BTreeMap<String, Tier> {
        pairs.iter().map(|(n, t)| ((*n).to_owned(), *t)).collect()
    }

    #[test]
    fn propagates_secret_through_fields_transitively() {
        let mut g = TypeGraph::default();
        g.add_field("Holder", "SecretKey", "a.rs", 3);
        g.add_field("Outer", "Holder", "a.rs", 9);
        let eff = g.propagate(&tiers(&[("SecretKey", Tier::Secret)]));
        assert_eq!(eff.get("Holder").map(|i| i.tier), Some(Tier::Secret));
        assert_eq!(eff.get("Outer").map(|i| i.tier), Some(Tier::Secret));
        match &eff["Outer"].provenance {
            Provenance::Field {
                field_type, line, ..
            } => {
                assert_eq!(field_type, "Holder");
                assert_eq!(*line, 9);
            }
            p => panic!("unexpected provenance {p:?}"),
        }
    }

    #[test]
    fn secret_beats_plaintext_and_ciphertext_stops_propagation() {
        let mut g = TypeGraph::default();
        g.add_field("Mixed", "Document", "a.rs", 1);
        g.add_field("Mixed", "SecretKey", "a.rs", 2);
        g.add_field("Sealed", "SecretKey", "a.rs", 7);
        g.add_field("Carrier", "Sealed", "a.rs", 12);
        let eff = g.propagate(&tiers(&[
            ("SecretKey", Tier::Secret),
            ("Document", Tier::Plaintext),
            ("Sealed", Tier::Ciphertext),
        ]));
        assert_eq!(eff.get("Mixed").map(|i| i.tier), Some(Tier::Secret));
        // Sealed is explicitly Ciphertext: the embedded secret does not
        // override it, and nothing propagates out of it.
        assert_eq!(eff.get("Sealed").map(|i| i.tier), Some(Tier::Ciphertext));
        assert!(!eff.contains_key("Carrier"), "{eff:?}");
    }
}
