#![forbid(unsafe_code)]
//! `sdds-check` — a loom-style concurrency model checker for the SDDS
//! workspace, with no dependencies outside `std`.
//!
//! # What it does
//!
//! A [`Model`] runs a closed test body under **bounded exhaustive DFS over
//! thread interleavings**. The body uses the shim primitives in [`shim`]
//! (`Mutex`, `RwLock`, `Condvar`, atomics, `thread::spawn`/`scope`) instead
//! of `std::sync`; every shim operation is a *scheduling point* where a
//! cooperative scheduler decides which thread runs next. The checker
//! systematically enumerates those decisions:
//!
//! - **Exhaustive within bounds** — all schedules up to the preemption bound
//!   (default 2 preemptive switches; forced switches at blocking points are
//!   free), or until the branch budget (`SDDS_CHECK_BRANCHES`) runs out.
//! - **Deterministic and replayable** — a schedule is the list of choice
//!   indices taken; a counterexample prints it, and
//!   `SDDS_CHECK_REPLAY=<schedule>` re-runs exactly that interleaving.
//! - **Deadlock and lost-wakeup detection** — a state where no thread can
//!   run is reported as a counterexample instead of hanging, and an
//!   all-threads-parked-on-condvars state is flagged as a lost wakeup.
//!
//! Production code never imports this crate directly: the `sdds-sync` facade
//! re-exports `std::sync`/`std::thread` normally and these shims under
//! `--cfg sdds_check`, so the same `sdds-dsp`/`sdds-proxy` sources are
//! model-checkable without forking them.
//!
//! # Example
//!
//! ```
//! use sdds_check::Model;
//! use sdds_check::shim::sync::{Arc, Mutex};
//! use sdds_check::shim::thread;
//!
//! let report = Model::default()
//!     .check("counter", || {
//!         let n = Arc::new(Mutex::new(0u32));
//!         let n2 = Arc::clone(&n);
//!         let t = thread::spawn(move || {
//!             *n2.lock().unwrap() += 1;
//!         });
//!         *n.lock().unwrap() += 1;
//!         t.join().unwrap();
//!         assert_eq!(*n.lock().unwrap(), 2);
//!     })
//!     .expect("no interleaving violates the invariant");
//! assert!(report.exhausted);
//! ```
//!
//! # Reading a counterexample
//!
//! A failing [`check`](Model::check) returns a [`Counterexample`]; its
//! `Display` shows the failure (assertion message, deadlock report, …), the
//! schedule as comma-separated choice indices, and the granted-thread trace.
//! Re-run the single failing interleaving with
//! `SDDS_CHECK_REPLAY=<schedule> cargo test -p sdds-check <test_name>`.

mod exec;
pub mod shim;

use exec::{run_once, Failure};
use std::fmt;

/// Environment variable bounding how many executions one model may run.
pub const BRANCHES_ENV: &str = "SDDS_CHECK_BRANCHES";
/// Environment variable overriding the preemption bound.
pub const PREEMPTIONS_ENV: &str = "SDDS_CHECK_PREEMPTIONS";
/// Environment variable holding a single schedule to replay instead of
/// searching (comma-separated choice indices, as printed by a
/// [`Counterexample`]).
pub const REPLAY_ENV: &str = "SDDS_CHECK_REPLAY";

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(default)
}

/// Parses a schedule string (`"0,1,0,2"`) as printed in a counterexample.
/// Non-numeric fragments are ignored, so a schedule pasted with surrounding
/// punctuation still parses.
pub fn parse_schedule(s: &str) -> Vec<usize> {
    s.split(',')
        .filter_map(|part| part.trim().parse().ok())
        .collect()
}

/// Exploration budget and bounds for one model check.
#[derive(Debug, Clone, Copy)]
pub struct Model {
    branches: usize,
    preemption_bound: usize,
    max_steps: usize,
}

impl Default for Model {
    /// Reads the budget from the environment: `SDDS_CHECK_BRANCHES`
    /// executions (default 20 000) and `SDDS_CHECK_PREEMPTIONS` preemptive
    /// switches (default 2).
    fn default() -> Self {
        Model {
            branches: env_usize(BRANCHES_ENV, 20_000),
            preemption_bound: env_usize(PREEMPTIONS_ENV, 2),
            max_steps: 20_000,
        }
    }
}

impl Model {
    /// A model with the environment-provided default budget.
    pub fn new() -> Self {
        Model::default()
    }

    /// Caps the number of executions explored (overrides the env budget).
    pub fn branches(mut self, branches: usize) -> Self {
        self.branches = branches.max(1);
        self
    }

    /// Caps preemptive context switches per execution. Forced switches (at
    /// blocking operations) are always explored and do not count.
    pub fn preemption_bound(mut self, bound: usize) -> Self {
        self.preemption_bound = bound;
        self
    }

    /// Caps scheduling points per execution; exceeding it fails the
    /// execution as a livelock.
    pub fn max_steps(mut self, steps: usize) -> Self {
        self.max_steps = steps.max(1);
        self
    }

    /// Explores interleavings of `f` depth-first until a failure, exhaustion,
    /// or the branch budget. `f` runs once per execution and must be
    /// self-contained (fresh state each run).
    ///
    /// With `SDDS_CHECK_REPLAY` set, runs exactly that one schedule instead
    /// of searching.
    pub fn check<F>(&self, name: &str, f: F) -> Result<Report, Box<Counterexample>>
    where
        F: Fn() + Sync,
    {
        if let Ok(replay_schedule) = std::env::var(REPLAY_ENV) {
            let preset = parse_schedule(&replay_schedule);
            return self.run_preset(name, &preset, 1, &f).map(|()| Report {
                executions: 1,
                exhausted: false,
            });
        }
        let mut preset: Vec<usize> = Vec::new();
        let mut executions = 0usize;
        loop {
            let outcome = run_once(&preset, self.preemption_bound, self.max_steps, &f);
            executions += 1;
            if let Some(failure) = outcome.failure {
                return Err(Box::new(Counterexample::new(
                    name,
                    &outcome.schedule,
                    outcome.trace,
                    failure,
                    executions,
                )));
            }
            // Backtrack: deepest choice with an untried alternative.
            let deepest = outcome
                .schedule
                .iter()
                .rposition(|c| c.chosen + 1 < c.eligible.len());
            let Some(depth) = deepest else {
                return Ok(Report {
                    executions,
                    exhausted: true,
                });
            };
            if executions >= self.branches {
                return Ok(Report {
                    executions,
                    exhausted: false,
                });
            }
            preset = outcome.schedule[..depth].iter().map(|c| c.chosen).collect();
            preset.push(outcome.schedule[depth].chosen + 1);
        }
    }

    /// Replays one specific schedule (as printed by a counterexample) and
    /// reports whether it still fails.
    pub fn replay<F>(&self, name: &str, schedule: &[usize], f: F) -> Result<(), Box<Counterexample>>
    where
        F: Fn() + Sync,
    {
        self.run_preset(name, schedule, 1, &f)
    }

    fn run_preset(
        &self,
        name: &str,
        preset: &[usize],
        executions: usize,
        f: &(dyn Fn() + Sync),
    ) -> Result<(), Box<Counterexample>> {
        let outcome = run_once(preset, self.preemption_bound, self.max_steps, f);
        match outcome.failure {
            None => Ok(()),
            Some(failure) => Err(Box::new(Counterexample::new(
                name,
                &outcome.schedule,
                outcome.trace,
                failure,
                executions,
            ))),
        }
    }
}

/// Convenience: [`Model::default()`]`.check(name, f)`.
pub fn check<F>(name: &str, f: F) -> Result<Report, Box<Counterexample>>
where
    F: Fn() + Sync,
{
    Model::default().check(name, f)
}

/// Outcome of a successful exploration.
#[derive(Debug, Clone, Copy)]
pub struct Report {
    /// Executions (distinct schedules) actually run.
    pub executions: usize,
    /// True when the whole bounded schedule space was explored; false when
    /// the branch budget stopped the search first.
    pub exhausted: bool,
}

/// A failing interleaving: what went wrong and how to run it again.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// Model name, as passed to [`Model::check`].
    pub name: String,
    /// Choice index taken at each scheduling point — the replayable schedule.
    pub schedule: Vec<usize>,
    /// Thread granted at each scheduling point (`t0` is the test body).
    pub trace: Vec<usize>,
    /// Failure description: panic message, deadlock report, or step budget.
    pub message: String,
    /// How many executions ran before this one failed.
    pub executions: usize,
}

impl Counterexample {
    fn new(
        name: &str,
        schedule: &[exec::Choice],
        trace: Vec<usize>,
        failure: Failure,
        executions: usize,
    ) -> Self {
        Counterexample {
            name: name.to_owned(),
            schedule: schedule.iter().map(|c| c.chosen).collect(),
            trace,
            message: failure.message(),
            executions,
        }
    }

    /// The schedule in the `SDDS_CHECK_REPLAY` wire format (`"0,1,0,2"`).
    pub fn schedule_string(&self) -> String {
        self.schedule
            .iter()
            .map(usize::to_string)
            .collect::<Vec<_>>()
            .join(",")
    }
}

impl fmt::Display for Counterexample {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "model '{}' failed on execution {}: {}",
            self.name, self.executions, self.message
        )?;
        writeln!(f, "  schedule: {}", self.schedule_string())?;
        let shown: Vec<String> = self
            .trace
            .iter()
            .take(64)
            .map(|t| format!("t{t}"))
            .collect();
        let ellipsis = if self.trace.len() > 64 { " …" } else { "" };
        writeln!(f, "  trace:    {}{}", shown.join(" "), ellipsis)?;
        write!(
            f,
            "  replay:   {}={} cargo test -p sdds-check {}",
            REPLAY_ENV,
            self.schedule_string(),
            self.name
        )
    }
}

impl std::error::Error for Counterexample {}
