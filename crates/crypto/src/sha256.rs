//! SHA-256 (FIPS 180-4).

/// Size of a SHA-256 digest in bytes.
pub const DIGEST_SIZE: usize = 32;
/// Internal block size in bytes.
pub const BLOCK_SIZE: usize = 64;

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Incremental SHA-256 hasher.
#[derive(Clone)]
pub struct Sha256 {
    state: [u32; 8],
    buffer: [u8; BLOCK_SIZE],
    buffer_len: usize,
    total_len: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Sha256::new()
    }
}

impl Sha256 {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Sha256 {
            state: H0,
            buffer: [0u8; BLOCK_SIZE],
            buffer_len: 0,
            total_len: 0,
        }
    }

    /// Absorbs `data`.
    pub fn update(&mut self, data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        let mut data = data;
        if self.buffer_len > 0 {
            let take = (BLOCK_SIZE - self.buffer_len).min(data.len());
            self.buffer[self.buffer_len..self.buffer_len + take].copy_from_slice(&data[..take]);
            self.buffer_len += take;
            data = &data[take..];
            if self.buffer_len == BLOCK_SIZE {
                let block = self.buffer;
                self.compress(&block);
                self.buffer_len = 0;
            }
        }
        while data.len() >= BLOCK_SIZE {
            let mut block = [0u8; BLOCK_SIZE];
            block.copy_from_slice(&data[..BLOCK_SIZE]);
            self.compress(&block);
            data = &data[BLOCK_SIZE..];
        }
        if !data.is_empty() {
            self.buffer[..data.len()].copy_from_slice(data);
            self.buffer_len = data.len();
        }
    }

    /// Finalises and returns the digest.
    pub fn finalize(mut self) -> [u8; DIGEST_SIZE] {
        let bit_len = self.total_len.wrapping_mul(8);
        // Append 0x80 then zero padding then the 64-bit big-endian length.
        self.update_padding(0x80);
        while self.buffer_len != 56 {
            self.update_padding(0);
        }
        let len_bytes = bit_len.to_be_bytes();
        for &b in &len_bytes {
            self.update_padding(b);
        }
        debug_assert_eq!(self.buffer_len, 0);
        let mut out = [0u8; DIGEST_SIZE];
        for (i, word) in self.state.iter().enumerate() {
            out[4 * i..4 * i + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    /// Pushes a single padding byte without affecting the message length.
    fn update_padding(&mut self, byte: u8) {
        self.buffer[self.buffer_len] = byte;
        self.buffer_len += 1;
        if self.buffer_len == BLOCK_SIZE {
            let block = self.buffer;
            self.compress(&block);
            self.buffer_len = 0;
        }
    }

    fn compress(&mut self, block: &[u8; BLOCK_SIZE]) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks(4).enumerate() {
            // lint: infallible — `chunks(4)` over a 64-byte block yields
            // exact 4-byte slices.
            w[i] = u32::from_be_bytes(chunk.try_into().expect("4 bytes"));
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let temp1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let temp2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(temp1);
            d = c;
            c = b;
            b = a;
            a = temp1.wrapping_add(temp2);
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }
}

/// Convenience one-shot hash.
pub fn sha256(data: &[u8]) -> [u8; DIGEST_SIZE] {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

/// Formats a digest as lowercase hexadecimal.
pub fn to_hex(digest: &[u8]) -> String {
    let mut s = String::with_capacity(digest.len() * 2);
    for b in digest {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_string_vector() {
        assert_eq!(
            to_hex(&sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn abc_vector() {
        assert_eq!(
            to_hex(&sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn two_block_vector() {
        assert_eq!(
            to_hex(&sha256(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn million_a_vector() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(
            to_hex(&sha256(&data)),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn incremental_update_matches_oneshot() {
        let data: Vec<u8> = (0..1000u32).map(|i| (i % 256) as u8).collect();
        let oneshot = sha256(&data);
        for split in [0usize, 1, 63, 64, 65, 500, 999, 1000] {
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), oneshot, "split at {split}");
        }
        // Byte-by-byte.
        let mut h = Sha256::new();
        for b in &data {
            h.update(&[*b]);
        }
        assert_eq!(h.finalize(), oneshot);
    }

    #[test]
    fn to_hex_formats_correctly() {
        assert_eq!(to_hex(&[0x00, 0xff, 0x0a]), "00ff0a");
    }
}
