//! Error type for the cryptographic substrate.

use std::fmt;

/// Errors raised by the cryptographic primitives.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CryptoError {
    /// Ciphertext length is not compatible with the mode (e.g. not a multiple
    /// of the block size for CBC).
    BadCiphertextLength {
        /// Actual length.
        len: usize,
    },
    /// Padding found at decryption time is invalid — almost always the sign of
    /// a tampered or mis-keyed ciphertext.
    BadPadding,
    /// An integrity check (HMAC or Merkle) failed: the data was tampered with.
    IntegrityFailure {
        /// Human readable context (which object failed).
        context: String,
    },
    /// The requested key is not present in the key ring.
    UnknownKey {
        /// Identifier of the missing key.
        key_id: u32,
    },
    /// A Merkle proof or chunk index is inconsistent with the tree shape.
    BadProof {
        /// Human readable description.
        message: String,
    },
}

impl fmt::Display for CryptoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CryptoError::BadCiphertextLength { len } => {
                write!(f, "ciphertext length {len} is not valid for this mode")
            }
            CryptoError::BadPadding => write!(f, "invalid padding (tampered or mis-keyed data)"),
            CryptoError::IntegrityFailure { context } => {
                write!(f, "integrity check failed: {context}")
            }
            CryptoError::UnknownKey { key_id } => write!(f, "unknown key id {key_id}"),
            CryptoError::BadProof { message } => write!(f, "invalid integrity proof: {message}"),
        }
    }
}

impl std::error::Error for CryptoError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(CryptoError::BadCiphertextLength { len: 17 }
            .to_string()
            .contains("17"));
        assert!(CryptoError::BadPadding.to_string().contains("padding"));
        assert!(CryptoError::IntegrityFailure {
            context: "chunk 3".into()
        }
        .to_string()
        .contains("chunk 3"));
        assert!(CryptoError::UnknownKey { key_id: 9 }
            .to_string()
            .contains('9'));
        assert!(CryptoError::BadProof {
            message: "bad index".into()
        }
        .to_string()
        .contains("bad index"));
    }
}
