//! # sdds-core — client-based access control for XML on smart devices
//!
//! This crate implements the contribution of Bouganim et al. (SIGMOD 2005 demo,
//! building on VLDB 2004): evaluating **dynamic, personalised access-control
//! rules inside a Secure Operating Environment** (a smart card) over a
//! **streaming, encrypted** XML document, so that access rights are dissociated
//! from encryption and can change without re-encrypting or redistributing keys.
//!
//! The main pieces are:
//!
//! * [`rule`] — the access-control model: `<sign, subject, object>` rules whose
//!   objects are XP{[],*,//} paths (§2.2), rule sets and their wire format,
//! * [`conflict`] — the two conflict-resolution policies (*Denial Takes
//!   Precedence* and *Most Specific Object Takes Precedence*) and the decision
//!   algebra used by the evaluator,
//! * [`automaton`] — compilation of each rule into a non-deterministic automaton
//!   made of a navigational path and predicate paths (Figure 2 of the paper),
//! * [`dispatch`] — the shared dispatch automaton: all rule automata merged
//!   into one prefix-sharing transition structure over interned name symbols,
//!   so per-event work scales with the rules that can actually advance instead
//!   of the installed rule count,
//! * [`runtime`] — the streaming execution of those automata over `open` /
//!   `value` / `close` events: token stack, predicate set, pending rules,
//! * [`assembler`] — the sign-stack / authorized-view construction: conflict
//!   resolution per node, structural scaffolding, pending-decision buffering,
//! * [`evaluator`] — the plain streaming evaluator facade (events in,
//!   authorized events out) used on unencrypted streams and by the baselines,
//! * [`skipindex`] — the compact streaming index embedded in the encrypted
//!   document (tag-dictionary bit arrays + subtree sizes, recursively
//!   compressed) that lets the SOE *skip* forbidden or irrelevant subtrees,
//! * [`secdoc`] — the secure document format: compact binary tokens, chunked
//!   encryption, Merkle integrity, embedded skip index,
//! * [`engine`] — the SOE engine proper: fetch → integrity-check → decrypt →
//!   parse → evaluate, under the card's RAM budget and cost ledger, exposed as
//!   an APDU [`sdds_card::Applet`],
//! * [`query`] — query handling (the authorized view is intersected with a
//!   user query),
//! * [`baseline`] — the comparison points of the evaluation: DOM
//!   materialisation on the terminal and server-side static encryption,
//! * [`session`] — access-rule refresh / key provisioning protocols between a
//!   trusted server and the SOE.

#![forbid(unsafe_code)]

pub mod assembler;
pub mod automaton;
pub mod baseline;
pub mod conflict;
pub mod dispatch;
pub mod engine;
pub mod error;
pub mod evaluator;
pub mod query;
pub mod rule;
pub mod runtime;
pub mod secdoc;
pub mod session;
pub mod skipindex;

pub use conflict::{AccessPolicy, Decision};
pub use error::CoreError;
pub use evaluator::{EvaluatorConfig, EvaluatorStats, StreamingEvaluator};
pub use query::Query;
pub use rule::{AccessRule, RuleId, RuleSet, Sign, Subject};
pub use secdoc::{SecureDocument, SecureDocumentBuilder};
