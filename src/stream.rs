//! Incremental pull sessions: [`ViewStream`], an iterator over authorized
//! events.
//!
//! [`crate::Client::authorized_view`] collects a whole view into one
//! `String`, which is convenient but forces the application to wait for the
//! last chunk before seeing the first element. [`ViewStream`] is the same
//! session cut the other way: an `Iterator` over the authorized
//! [`Event`]s, pulling encrypted chunks from the shared [`DspService`] **on
//! demand of the SOE** — so subtrees the skip index proves forbidden or
//! irrelevant are never transferred, and the application's memory stays
//! bounded by what it keeps, not by the document.

use sdds_sync::sync::Arc;
use std::collections::VecDeque;

use sdds_core::engine::{SecureEvaluationSession, SessionRequest, SessionStats};
use sdds_crypto::merkle::MerkleProof;
use sdds_dsp::{DspService, SessionObs};
use sdds_xml::{writer, Event};

use crate::error::SddsError;

/// An incremental pull session: iterates over the authorized events of one
/// document, fetching chunks from the service as the SOE requests them.
///
/// The stream **pins the upload revision** it saw at open: every chunk fetch
/// carries it, so a republish between two `next()` calls yields the typed
/// [`SddsError::StaleRevision`] — never a chunk of the new upload failing
/// Merkle verification against the old header.
///
/// Yields `Result<Event, SddsError>`; after the first error the stream is
/// poisoned and yields nothing further. Once exhausted, the session
/// statistics (transfer, decryption, skipping, peak RAM) are available
/// through [`ViewStream::stats`].
pub struct ViewStream {
    service: Arc<DspService>,
    doc_id: String,
    /// Upload revision pinned when the stream was opened.
    revision: u64,
    /// `None` once the stream ended — normally (stats recorded) or on error
    /// (the error was yielded, the stream is poisoned).
    session: Option<SecureEvaluationSession>,
    buffer: VecDeque<Event>,
    stats: Option<SessionStats>,
    /// Session telemetry cells shared with the service's registry (chunk
    /// round-trips, wire bytes, events yielded to the application).
    obs: SessionObs,
}

impl std::fmt::Debug for ViewStream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ViewStream")
            .field("doc_id", &self.doc_id)
            .field("buffered", &self.buffer.len())
            .field("done", &self.session.is_none())
            .finish_non_exhaustive()
    }
}

impl ViewStream {
    pub(crate) fn new(
        service: Arc<DspService>,
        doc_id: String,
        revision: u64,
        session: SecureEvaluationSession,
    ) -> Self {
        let obs = service.obs().session();
        ViewStream {
            service,
            doc_id,
            revision,
            session: Some(session),
            buffer: VecDeque::new(),
            stats: None,
            obs,
        }
    }

    /// Document this stream pulls.
    pub fn doc_id(&self) -> &str {
        &self.doc_id
    }

    /// Upload revision this stream pinned at open.
    pub fn revision(&self) -> u64 {
        self.revision
    }

    /// Final session statistics, available once the stream is exhausted.
    pub fn stats(&self) -> Option<&SessionStats> {
        self.stats.as_ref()
    }

    /// Drains the stream and renders the remaining authorized events as XML
    /// text — the same bytes [`crate::Client::authorized_view`] returns for
    /// an untouched stream.
    pub fn collect_view(mut self) -> Result<String, SddsError> {
        let mut events: Vec<Event> = Vec::new();
        for event in &mut self {
            events.push(event?);
        }
        Ok(writer::to_string(&events))
    }

    /// Serves exactly one SOE request (one chunk fetch + supply). `Ok(true)`
    /// when the document is fully processed.
    fn advance(&mut self) -> Result<bool, SddsError> {
        let session: &mut SecureEvaluationSession = self
            .session
            .as_mut()
            // lint: infallible — `advance` is only called while `next` holds
            // an open session.
            .expect("advance requires a session");
        match session.next_request() {
            SessionRequest::Done => {
                let ended: SecureEvaluationSession = self
                    .session
                    .take()
                    // lint: infallible — checked as `Some` at the top of
                    // `advance`.
                    .expect("session present");
                let (rest, stats) = ended.finish()?;
                self.buffer.extend(rest);
                self.stats = Some(stats);
                Ok(true)
            }
            SessionRequest::NeedChunk(index) => {
                let served = self
                    .service
                    .fetch_chunk_pinned(&self.doc_id, index, self.revision)?;
                let chunk: Arc<[u8]> = served.0;
                let proof: MerkleProof = served.1;
                session.supply_chunk(index, &chunk, &proof)?;
                let produced = session.take_output();
                // Account the transfer like the terminal-side channel would —
                // by size only, without serialising the proof.
                let wire = chunk.len() + proof.encoded_len();
                let produced_len: usize = produced.iter().map(Event::serialized_len).sum();
                session.record_exchange(wire, produced_len);
                self.obs.record_exchange(wire, produced_len);
                self.buffer.extend(produced);
                Ok(false)
            }
        }
    }
}

impl Iterator for ViewStream {
    type Item = Result<Event, SddsError>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if let Some(event) = self.buffer.pop_front() {
                self.obs.event_delivered();
                return Some(Ok(event));
            }
            // Stream over (normally or poisoned): nothing further to yield.
            self.session.as_ref()?;
            match self.advance() {
                Ok(_) => continue,
                Err(e) => {
                    self.session = None;
                    return Some(Err(e));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{Client, Publisher};
    use sdds_core::rule::RuleSet;
    use sdds_xml::generator::{self, GeneratorConfig, HospitalProfile};

    fn publisher() -> Publisher {
        let rules = RuleSet::parse(
            "+, doctor, //patient\n-, doctor, //patient/ssn\n+, secretary, //patient/name",
        )
        .unwrap();
        // Small chunks so the secretary's skips span whole chunks (the E2
        // granularity effect), which the stats assertions below rely on.
        let publisher = Publisher::builder(b"hospital-2005")
            .rules(rules)
            .chunk_size(128)
            .build()
            .unwrap();
        let doc = generator::hospital(
            &HospitalProfile {
                patients: 4,
                ..HospitalProfile::default()
            },
            &GeneratorConfig::default(),
        );
        publisher.publish("folders", &doc).unwrap();
        publisher
    }

    #[test]
    fn stream_is_byte_identical_to_the_card_path() {
        let publisher = publisher();
        let client = Client::builder("doctor").provision(&publisher).unwrap();
        let card_view = client.authorized_view("folders").unwrap();
        let streamed = client
            .open_stream("folders")
            .unwrap()
            .collect_view()
            .unwrap();
        assert_eq!(streamed, card_view);
        assert!(streamed.contains("<patient"));
    }

    #[test]
    fn events_arrive_incrementally_with_stats_at_the_end() {
        let publisher = publisher();
        let client = Client::builder("secretary").provision(&publisher).unwrap();
        let mut stream = client.open_stream("folders").unwrap();
        assert_eq!(stream.doc_id(), "folders");
        assert!(stream.stats().is_none(), "stats only exist once exhausted");
        let mut events = 0usize;
        for event in &mut stream {
            event.unwrap();
            events += 1;
        }
        assert!(events > 0);
        let stats = stream.stats().expect("exhausted stream has stats");
        assert!(stats.ledger.bytes_decrypted > 0);
        assert!(stats.ledger.channel.total_bytes() > 0);
        // The restrictive secretary skips most of the folder.
        assert!(stats.ledger.bytes_skipped > 0);
        assert!(stats.chunks_skipped > 0);
    }

    #[test]
    fn unknown_documents_poison_the_stream_with_one_error() {
        let publisher = publisher();
        let client = Client::builder("doctor").provision(&publisher).unwrap();
        assert!(client.open_stream("nope").is_err());
        // A document removed between open and iteration surfaces as one Err
        // item, then the stream ends. (Simulated here with a bad subject.)
        let stranger = Client::builder("doctor")
            .service(Arc::clone(publisher.service()))
            .provision(&Publisher::new(b"other-community", RuleSet::new()))
            .unwrap();
        assert!(stranger.open_stream("folders").is_err());
    }
}
